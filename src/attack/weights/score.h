// Ground-truth scoring of recovered weight ratios (defense evaluation,
// DESIGN.md §10). The evaluator holds the victim's secrets and asks: how
// much of the model did the attack actually get, and how wrong is what it
// claims?
#ifndef SC_ATTACK_WEIGHTS_SCORE_H_
#define SC_ATTACK_WEIGHTS_SCORE_H_

#include <vector>

#include "attack/weights/attack.h"
#include "nn/tensor.h"

namespace sc::attack {

struct WeightScore {
  // Filters whose every position is correct: non-zero weights within
  // rel_tol of the true w/b ratio, zero weights identified as zero,
  // nothing flagged failed.
  int filters_recovered = 0;
  int filters_total = 0;
  // Positions correct over all filters (a defense may degrade filters
  // partially without losing any whole filter).
  long long positions_correct = 0;
  long long positions_total = 0;
  // max |recovered - true| of the w/b ratio over every position, counting
  // a claimed zero as a recovered 0.0. The paper's Figure-7 headline is
  // this number staying below 2^-10 undefended.
  double max_ratio_error = 0.0;

  double fraction_recovered() const {
    return filters_total > 0
               ? static_cast<double>(filters_recovered) / filters_total
               : 0.0;
  }
};

// Scores `filters` (one RecoveredFilter per output channel, in channel
// order) against the true weights {oc, ic, f, f} and bias {oc}. A
// position is correct within rel_tol * max(1, |true ratio|).
WeightScore ScoreRecoveredFilters(const std::vector<RecoveredFilter>& filters,
                                  const nn::Tensor& weights,
                                  const nn::Tensor& bias,
                                  float rel_tol = 1e-3f);

}  // namespace sc::attack

#endif  // SC_ATTACK_WEIGHTS_SCORE_H_
