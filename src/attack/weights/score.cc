#include "attack/weights/score.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace sc::attack {

WeightScore ScoreRecoveredFilters(const std::vector<RecoveredFilter>& filters,
                                  const nn::Tensor& weights,
                                  const nn::Tensor& bias,
                                  float rel_tol) {
  SC_CHECK(weights.shape().rank() == 4);
  SC_CHECK(bias.shape().rank() == 1);
  const int oc = weights.shape()[0];
  const int ic = weights.shape()[1];
  const int f = weights.shape()[2];
  SC_CHECK(weights.shape()[3] == f);
  SC_CHECK(bias.shape()[0] == oc);
  SC_CHECK_MSG(filters.size() == static_cast<std::size_t>(oc),
               "one RecoveredFilter per output channel expected");

  WeightScore score;
  score.filters_total = oc;
  for (int k = 0; k < oc; ++k) {
    const RecoveredFilter& rec = filters[static_cast<std::size_t>(k)];
    bool filter_ok = true;
    for (int c = 0; c < ic; ++c) {
      for (int i = 0; i < f; ++i) {
        for (int j = 0; j < f; ++j) {
          const double truth = static_cast<double>(weights.at(k, c, i, j)) /
                               static_cast<double>(bias.at(k));
          const std::size_t flat =
              static_cast<std::size_t>((c * f + i) * f + j);
          const bool claims_zero = rec.is_zero[flat];
          const double got = claims_zero ? 0.0 : rec.ratio.at(c, i, j);
          const double err = std::fabs(got - truth);
          score.max_ratio_error = std::max(score.max_ratio_error, err);
          ++score.positions_total;
          const double tol =
              rel_tol * std::max(1.0, std::fabs(truth));
          const bool correct = !rec.failed[flat] &&
                               (truth == 0.0 ? claims_zero : !claims_zero) &&
                               err <= tol;
          if (correct)
            ++score.positions_correct;
          else
            filter_ok = false;
        }
      }
    }
    if (filter_ok) ++score.filters_recovered;
  }
  return score;
}

}  // namespace sc::attack
