#include "attack/weights/robust.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace sc::attack {

namespace {

// Robust-attack acquisition budget (DESIGN.md §9): what the healing layer
// spends on top of attack.weights.oracle_queries.
struct RobustWeightMetrics {
  obs::Counter& samples =
      obs::Registry::Get().GetCounter("attack.weights.robust.samples");
  obs::Counter& retries =
      obs::Registry::Get().GetCounter("attack.weights.robust.retries");
  obs::Counter& sweeps =
      obs::Registry::Get().GetCounter("attack.weights.robust.sweeps");
};

RobustWeightMetrics& Metrics() {
  static RobustWeightMetrics m;
  return m;
}

void Validate(const VotingOracleConfig& cfg) {
  SC_CHECK_MSG(cfg.votes >= 1, "votes must be >= 1");
  SC_CHECK_MSG(cfg.votes % 2 == 1, "votes must be odd for a majority median");
  SC_CHECK_MSG(cfg.max_retries >= 0, "negative retry budget");
}

}  // namespace

VotingOracle::VotingOracle(ZeroCountOracle& inner, VotingOracleConfig cfg)
    : inner_(inner), cfg_(cfg) {
  Validate(cfg_);
}

VotingOracle::VotingOracle(std::unique_ptr<ZeroCountOracle> owned,
                           VotingOracleConfig cfg)
    : owned_(std::move(owned)), inner_(*owned_), cfg_(cfg) {
  Validate(cfg_);
}

template <typename Query>
std::size_t VotingOracle::Vote(Query&& query) {
  ++queries_;
  std::vector<std::size_t> votes;
  votes.reserve(static_cast<std::size_t>(cfg_.votes));
  for (int v = 0; v < cfg_.votes; ++v) {
    int failures = 0;
    for (;;) {
      ++samples_;
      try {
        votes.push_back(query());
        break;
      } catch (const TransientOracleError&) {
        ++retries_;
        ++failures;
        // Exhausting the retry budget is itself transient at the campaign
        // level (a fresh unit retry may land on a healthier probe), so it
        // surfaces as sc::TransientError — not a plain Error — and counts
        // against the campaign's transient-failure budget (DESIGN.md §12).
        if (failures > cfg_.max_retries) {
          std::ostringstream os;
          os << "oracle failed " << failures << " consecutive acquisitions"
             << " (retry budget " << cfg_.max_retries << " exhausted)";
          throw TransientError(os.str());
        }
      }
    }
  }
  // Median of an odd sample count: equals the majority value whenever a
  // strict majority agrees, and is a bounded-error compromise otherwise.
  const std::size_t mid = votes.size() / 2;
  std::nth_element(votes.begin(),
                   votes.begin() + static_cast<std::ptrdiff_t>(mid),
                   votes.end());
  return votes[mid];
}

std::size_t VotingOracle::ChannelNonZeros(
    const std::vector<SparsePixel>& pixels, int channel) {
  return Vote([&] { return inner_.ChannelNonZeros(pixels, channel); });
}

std::size_t VotingOracle::TotalNonZeros(
    const std::vector<SparsePixel>& pixels) {
  return Vote([&] { return inner_.TotalNonZeros(pixels); });
}

int VotingOracle::num_channels() const { return inner_.num_channels(); }

bool VotingOracle::SetActivationThreshold(float threshold) {
  return inner_.SetActivationThreshold(threshold);
}

std::unique_ptr<ZeroCountOracle> VotingOracle::Clone() const {
  std::unique_ptr<ZeroCountOracle> inner_copy = inner_.Clone();
  if (!inner_copy) return nullptr;
  return std::unique_ptr<ZeroCountOracle>(
      new VotingOracle(std::move(inner_copy), cfg_));
}

std::unique_ptr<ZeroCountOracle> VotingOracle::Fork(
    std::uint64_t stream) const {
  std::unique_ptr<ZeroCountOracle> inner_copy = inner_.Fork(stream);
  if (!inner_copy) return nullptr;
  return std::unique_ptr<ZeroCountOracle>(
      new VotingOracle(std::move(inner_copy), cfg_));
}

RobustWeightConfig ReferenceRobustWeightConfig() {
  RobustWeightConfig cfg;
  cfg.voting.votes = 3;
  cfg.voting.max_retries = 8;
  cfg.attack.max_rebrackets = 2;
  return cfg;
}

RobustWeightResult RecoverAllFiltersRobust(
    ZeroCountOracle& oracle, const SparseConvOracle::StageSpec& geometry,
    const RobustWeightConfig& cfg) {
  Validate(cfg.voting);
  const int n = oracle.num_channels();

  RobustWeightResult result;
  result.filters.resize(static_cast<std::size_t>(n));
  result.confidence.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint64_t> samples(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> retries(static_cast<std::size_t>(n), 0);

  std::mutex shared_mu;
  auto recover_one = [&](int k, ZeroCountOracle& probe) {
    VotingOracle voter(probe, cfg.voting);
    WeightAttack attack(voter, geometry, cfg.attack);
    result.filters[static_cast<std::size_t>(k)] = attack.RecoverFilter(k);
    samples[static_cast<std::size_t>(k)] = voter.samples();
    retries[static_cast<std::size_t>(k)] = voter.retries();
  };

  auto body = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) {
      // Fork keyed by the filter index: the k-th probe's noise stream is a
      // function of k alone, so any worker assignment yields identical
      // recoveries.
      const std::unique_ptr<ZeroCountOracle> probe =
          oracle.Fork(static_cast<std::uint64_t>(k));
      if (probe) {
        recover_one(static_cast<int>(k), *probe);
      } else {
        const std::lock_guard<std::mutex> lock(shared_mu);
        recover_one(static_cast<int>(k), oracle);
      }
    }
  };

  if (n < 2 || support::ThreadPool::GlobalThreads() <= 1 ||
      support::InParallelRegion()) {
    body(0, n);
  } else {
    support::ParallelFor(0, n, 1, body);
  }

  for (int k = 0; k < n; ++k) {
    const RecoveredFilter& rf = result.filters[static_cast<std::size_t>(k)];
    const std::size_t positions = rf.failed.size();
    std::size_t ok = 0;
    for (const bool f : rf.failed)
      if (!f) ++ok;
    result.confidence[static_cast<std::size_t>(k)] =
        positions > 0 ? static_cast<double>(ok) /
                            static_cast<double>(positions)
                      : 0.0;
    result.total_queries += rf.queries;
    result.total_samples += samples[static_cast<std::size_t>(k)];
    result.total_retries += retries[static_cast<std::size_t>(k)];
    result.total_rebrackets += rf.rebrackets;
  }
  Metrics().sweeps.Add();
  Metrics().samples.Add(result.total_samples);
  Metrics().retries.Add(result.total_retries);
  return result;
}

}  // namespace sc::attack
