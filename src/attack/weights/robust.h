// Self-healing weight extraction over a noisy zero-count oracle
// (robustness layer, DESIGN.md §8).
//
// Two healing mechanisms compose with the base Algorithm-2 attack:
//   - VotingOracle repeats every count query and returns the median of an
//     odd number of samples, retrying samples that fail transiently
//     (TransientOracleError) within a bounded budget — isolated count
//     perturbations and dropped acquisitions disappear here;
//   - WeightAttackConfig::max_rebrackets re-verifies each converged
//     bisection bracket and restarts contradicted searches — the backstop
//     for perturbations that slip through the vote.
// RecoverAllFiltersRobust wires both up per filter, forking the oracle by
// filter index (ZeroCountOracle::Fork) so results are independent of the
// thread count, and reports per-filter confidence plus the query budget
// actually spent.
#ifndef SC_ATTACK_WEIGHTS_ROBUST_H_
#define SC_ATTACK_WEIGHTS_ROBUST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/weights/attack.h"
#include "attack/weights/oracle.h"

namespace sc::attack {

struct VotingOracleConfig {
  // Samples per logical query; the median is returned. Must be odd so the
  // median is a majority value whenever one exists. 1 = no voting.
  int votes = 3;
  // Transient failures tolerated per sample before giving up on the whole
  // attack (a real probe that fails this often is broken, not noisy).
  int max_retries = 8;
};

// Decorator turning a flaky/noisy oracle into a steadier one by repeated
// sampling. queries() counts logical queries; samples()/retries() account
// for the real acquisition budget.
class VotingOracle : public ZeroCountOracle {
 public:
  // Non-owning wrap: `inner` must outlive this oracle.
  VotingOracle(ZeroCountOracle& inner, VotingOracleConfig cfg);

  std::size_t ChannelNonZeros(const std::vector<SparsePixel>& pixels,
                              int channel) override;
  std::size_t TotalNonZeros(const std::vector<SparsePixel>& pixels) override;
  int num_channels() const override;
  std::size_t channel_elems() const override {
    return inner_.channel_elems();
  }
  bool SetActivationThreshold(float threshold) override;
  std::unique_ptr<ZeroCountOracle> Clone() const override;
  std::unique_ptr<ZeroCountOracle> Fork(std::uint64_t stream) const override;

  // Underlying acquisitions issued (successful samples + failed attempts).
  std::uint64_t samples() const { return samples_; }
  // Acquisitions that failed transiently and were retried.
  std::uint64_t retries() const { return retries_; }

 private:
  VotingOracle(std::unique_ptr<ZeroCountOracle> owned,
               VotingOracleConfig cfg);

  template <typename Query>
  std::size_t Vote(Query&& query);

  std::unique_ptr<ZeroCountOracle> owned_;
  ZeroCountOracle& inner_;
  VotingOracleConfig cfg_;
  std::uint64_t samples_ = 0;
  std::uint64_t retries_ = 0;
};

struct RobustWeightConfig {
  WeightAttackConfig attack;  // set max_rebrackets > 0 to arm re-bracketing
  VotingOracleConfig voting;
};

// The documented reference robustness setting (README "Robustness"):
// 3-sample voting, 8 retries, 2 re-brackets — heals the reference oracle
// noise level (sim::ReferenceOracleNoise) in the regression suite.
RobustWeightConfig ReferenceRobustWeightConfig();

struct RobustWeightResult {
  std::vector<RecoveredFilter> filters;
  // Per-filter fraction of weight positions recovered without failure
  // (aligned with `filters`); 1.0 = every position isolated cleanly.
  std::vector<double> confidence;
  // Acquisition budget actually spent, summed over filters.
  std::uint64_t total_queries = 0;   // logical oracle queries
  std::uint64_t total_samples = 0;   // underlying acquisitions
  std::uint64_t total_retries = 0;   // transiently failed acquisitions
  std::uint64_t total_rebrackets = 0;
};

// Robust analogue of RecoverAllFilters: recovers every filter through a
// per-filter VotingOracle over oracle.Fork(filter index). Deterministic
// for any SC_THREADS because the noise stream is keyed by the filter
// index, not by worker scheduling. Filters whose Fork returns nullptr are
// processed serially on `oracle` itself.
RobustWeightResult RecoverAllFiltersRobust(
    ZeroCountOracle& oracle, const SparseConvOracle::StageSpec& geometry,
    const RobustWeightConfig& cfg);

}  // namespace sc::attack

#endif  // SC_ATTACK_WEIGHTS_ROBUST_H_
