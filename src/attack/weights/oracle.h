// Zero-count oracles: the §4 side channel.
//
// With dynamic zero pruning, OFM write-back volume reveals how many
// non-zero elements a layer produced. The adversary drives the accelerator
// with crafted (almost-all-zero) inputs and watches that count change.
//
// Two granularities are modelled (DESIGN.md §2):
//   - aggregate: total non-zeros of the target OFM (the minimal leak the
//     paper assumes);
//   - per-channel: write-back is channel-tiled, so the ordered compressed
//     bursts reveal each output channel's count separately. This is what
//     makes per-filter attribution exact.
#ifndef SC_ATTACK_WEIGHTS_ORACLE_H_
#define SC_ATTACK_WEIGHTS_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "accel/synthesis_cache.h"
#include "nn/geometry.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "support/check.h"

namespace sc::attack {

// A single acquisition failed (probe desync, bus contention): the query
// produced no usable count but may be retried. Noisy oracle decorators
// (sim/noisy_oracle.h) raise this; robust drivers (attack/weights/robust.h)
// retry within a budget. Derives from sc::TransientError (check.h) so
// campaign supervisors classify it as retryable; hard contract violations
// still surface as plain sc::Error and abort.
class TransientOracleError : public TransientError {
 public:
  explicit TransientOracleError(const std::string& what)
      : TransientError(what) {}
};

// One non-zero pixel of a crafted input; everything else is zero.
struct SparsePixel {
  int c = 0;
  int y = 0;
  int x = 0;
  float value = 0.0f;
};

class ZeroCountOracle {
 public:
  virtual ~ZeroCountOracle() = default;

  // Non-zero count of output channel `channel` of the target layer for the
  // crafted input.
  virtual std::size_t ChannelNonZeros(
      const std::vector<SparsePixel>& pixels, int channel) = 0;

  // Aggregate non-zero count over all output channels.
  virtual std::size_t TotalNonZeros(
      const std::vector<SparsePixel>& pixels) = 0;

  virtual int num_channels() const = 0;

  // Elements of one output channel of the target OFM — the unit
  // ChannelNonZeros counts over, and the worst case a padding defense
  // inflates every count to. 0 when the oracle cannot tell. Defense-aware
  // decorators (defense/defended_oracle.h) require a non-zero value.
  virtual std::size_t channel_elems() const { return 0; }

  // Sets the accelerator's tunable activation threshold (Minerva-style
  // knob); returns false when the victim exposes no such knob.
  virtual bool SetActivationThreshold(float threshold) {
    (void)threshold;
    return false;
  }

  // Independent copy of this oracle (same victim, same current threshold,
  // own query counter) for concurrent per-filter sweeps — the side-channel
  // analogue of pointing a second probe at an identical device. Returns
  // nullptr when the oracle cannot be duplicated; parallel drivers then
  // fall back to the serial path.
  virtual std::unique_ptr<ZeroCountOracle> Clone() const { return nullptr; }

  // Clone() variant for deterministic parallel fan-out: `stream` names the
  // independent probe (e.g. the filter index a worker will sweep). Exact
  // oracles ignore it; stochastic decorators derive the copy's noise stream
  // from it, so results do not depend on which worker forked first.
  virtual std::unique_ptr<ZeroCountOracle> Fork(std::uint64_t stream) const {
    (void)stream;
    return Clone();
  }

  std::uint64_t queries() const { return queries_; }

 protected:
  std::uint64_t queries_ = 0;
};

// Side-channel oracle backed by the accelerator simulator with zero pruning
// enabled. Counts are decoded from the trace's compressed write bursts to
// the target stage's OFM region — precisely what a bus probe sees.
class AcceleratorOracle : public ZeroCountOracle {
 public:
  // `net` must stay alive for the oracle's lifetime. `target_node` selects
  // the stage whose OFM is observed (its stage output node).
  AcceleratorOracle(const nn::Network& net, int target_node,
                    accel::AcceleratorConfig cfg);

  std::size_t ChannelNonZeros(const std::vector<SparsePixel>& pixels,
                              int channel) override;
  std::size_t TotalNonZeros(const std::vector<SparsePixel>& pixels) override;
  int num_channels() const override { return num_channels_; }
  std::size_t channel_elems() const override;
  bool SetActivationThreshold(float threshold) override;
  std::unique_ptr<ZeroCountOracle> Clone() const override;

 private:
  struct Counts {
    std::size_t total = 0;
    std::vector<std::size_t> per_channel;
  };
  Counts Query(const std::vector<SparsePixel>& pixels);

  const nn::Network& net_;
  int target_node_;
  int target_stage_ = -1;
  int num_channels_ = 0;
  accel::Accelerator accel_;
  // Pooled per-oracle state: the DRAM layout is deterministic for the
  // victim, so build it once; the scratch trace keeps its chunk storage
  // across queries (Clear() does not free); the synthesis cache replays
  // repeated crafted inputs (calibration and sweep queries reuse the same
  // pixel patterns heavily) without re-running the forward pass. Parallel
  // sweeps use Clone(), so a query never runs concurrently on one instance
  // and each clone owns its own cache.
  accel::AddressMap map_;
  trace::Trace scratch_;
  accel::SynthesisCache cache_;
};

// Fast functional oracle for a single fused conv stage (conv [+ReLU]
// [+pool] in either order), exploiting the sparsity of crafted inputs.
// Used by the large benchmark sweeps; tests assert query-for-query
// equivalence with AcceleratorOracle.
class SparseConvOracle : public ZeroCountOracle {
 public:
  struct StageSpec {
    int in_depth = 0;
    int in_width = 0;
    int filter = 1;
    int stride = 1;
    int pad = 0;
    nn::PoolKind pool = nn::PoolKind::kNone;
    int pool_window = 0;
    int pool_stride = 0;
    int pool_pad = 0;
    // True: conv -> ReLU -> pool (standard; required for max pooling).
    // False: conv -> pool -> ReLU (average-pooling accelerators that merge
    // pooling into the accumulation, which Eq. (11) of the paper assumes).
    bool relu_before_pool = true;
    float relu_threshold = 0.0f;
    bool has_threshold_knob = false;
  };

  // Weights {oc, ic, f, f}, bias {oc} — the victim's secrets, held only by
  // the oracle (the attack never touches them).
  SparseConvOracle(StageSpec spec, nn::Tensor weights, nn::Tensor bias);

  std::size_t ChannelNonZeros(const std::vector<SparsePixel>& pixels,
                              int channel) override;
  std::size_t TotalNonZeros(const std::vector<SparsePixel>& pixels) override;
  int num_channels() const override;
  std::size_t channel_elems() const override;
  bool SetActivationThreshold(float threshold) override;
  std::unique_ptr<ZeroCountOracle> Clone() const override;

  const StageSpec& spec() const { return spec_; }
  int out_width() const;        // pre-pool convolution output width
  int pooled_width() const;     // final OFM width

 private:
  std::size_t ChannelCount(const std::vector<SparsePixel>& pixels, int oc);

  StageSpec spec_;
  nn::Tensor weights_;
  nn::Tensor bias_;
};

}  // namespace sc::attack

#endif  // SC_ATTACK_WEIGHTS_ORACLE_H_
