#include "campaign/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/check.h"

namespace sc::campaign {

namespace json = support::json;

const json::Value& Checkpoint::Payload(const std::string& unit) const {
  const auto it = units_.find(unit);
  SC_CHECK_MSG(it != units_.end(), "no checkpointed unit '" << unit << "'");
  return it->second;
}

void Checkpoint::Record(const std::string& unit, json::Value payload) {
  units_[unit] = std::move(payload);
}

std::string Checkpoint::Serialize() const {
  json::Value root = json::Value::Object();
  root.object["schema"] = json::Value::String(kSchema);
  root.object["fingerprint"] = json::Value::String(fingerprint_);
  json::Value units = json::Value::Object();
  for (const auto& [id, payload] : units_) units.object[id] = payload;
  root.object["units"] = std::move(units);
  return json::Dump(root);
}

Checkpoint Checkpoint::Parse(const std::string& text,
                             const std::string& expected_fingerprint) {
  const json::Value root = json::Parse(text);  // throws sc::Error on garbage
  SC_CHECK_MSG(root.kind == json::Value::Kind::kObject,
               "checkpoint root is not an object");
  SC_CHECK_MSG(root.Has("schema") && root.At("schema").kind ==
                                         json::Value::Kind::kString,
               "checkpoint missing schema tag");
  SC_CHECK_MSG(root.At("schema").str == kSchema,
               "foreign checkpoint schema '" << root.At("schema").str
                                             << "' (want " << kSchema << ")");
  SC_CHECK_MSG(root.Has("fingerprint") &&
                   root.At("fingerprint").kind == json::Value::Kind::kString,
               "checkpoint missing fingerprint");
  const std::string& fp = root.At("fingerprint").str;
  if (!expected_fingerprint.empty()) {
    SC_CHECK_MSG(fp == expected_fingerprint,
                 "checkpoint fingerprint mismatch: file was written by a "
                 "differently configured campaign");
  }
  SC_CHECK_MSG(root.Has("units") &&
                   root.At("units").kind == json::Value::Kind::kObject,
               "checkpoint missing units object");

  Checkpoint cp(fp);
  for (const auto& [id, payload] : root.At("units").object) {
    SC_CHECK_MSG(payload.kind == json::Value::Kind::kObject,
                 "checkpoint unit '" << id << "' is not an object");
    cp.units_[id] = payload;
  }
  return cp;
}

void Checkpoint::SaveFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    SC_CHECK_MSG(f.is_open(), "cannot open " << tmp << " for writing");
    f << Serialize();
    f.flush();
    SC_CHECK_MSG(static_cast<bool>(f), "write failure on " << tmp);
  }
  // POSIX rename is atomic with respect to concurrent readers: `path` is
  // always either the previous checkpoint or the complete new one.
  SC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename " << tmp << " over " << path);
}

Checkpoint Checkpoint::LoadFile(const std::string& path,
                                const std::string& expected_fingerprint) {
  std::ifstream f(path, std::ios::binary);
  SC_CHECK_MSG(f.is_open(), "cannot open checkpoint " << path);
  std::ostringstream text;
  text << f.rdbuf();
  return Parse(text.str(), expected_fingerprint);
}

}  // namespace sc::campaign
