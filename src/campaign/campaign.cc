#include "campaign/campaign.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "accel/accelerator.h"
#include "attack/structure/report.h"
#include "campaign/checkpoint.h"
#include "campaign/watchdog.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "obs/metrics.h"
#include "store/corpus.h"
#include "store/reader.h"
#include "store/writer.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace sc::campaign {

namespace json = support::json;

namespace {

// --- Metrics -------------------------------------------------------------

struct CampaignMetrics {
  obs::Counter& done = obs::Registry::Get().GetCounter("campaign.units.done");
  obs::Counter& from_checkpoint =
      obs::Registry::Get().GetCounter("campaign.units.from_checkpoint");
  obs::Counter& failed_transient =
      obs::Registry::Get().GetCounter("campaign.units.failed_transient");
  obs::Counter& failed_fatal =
      obs::Registry::Get().GetCounter("campaign.units.failed_fatal");
  obs::Counter& cancelled =
      obs::Registry::Get().GetCounter("campaign.units.cancelled");
  obs::Counter& skipped =
      obs::Registry::Get().GetCounter("campaign.units.skipped");
  obs::Counter& saves =
      obs::Registry::Get().GetCounter("campaign.checkpoint.saves");
  obs::Counter& save_failures =
      obs::Registry::Get().GetCounter("campaign.checkpoint.save_failures");
  obs::Counter& stuck =
      obs::Registry::Get().GetCounter("campaign.watchdog.stuck");
  obs::Counter& traces_persisted =
      obs::Registry::Get().GetCounter("campaign.traces.persisted");
  obs::Counter& traces_rehydrated =
      obs::Registry::Get().GetCounter("campaign.traces.rehydrated");
  obs::Histogram& unit_ns =
      obs::Registry::Get().GetHistogram("campaign.unit_ns");
};

CampaignMetrics& Metrics() {
  static CampaignMetrics m;
  return m;
}

// --- JSON field helpers --------------------------------------------------
//
// Payload schema discipline: values a double can hold exactly (ints,
// element counts < 2^53, bit patterns < 2^32) are JSON numbers; u64
// counters (cycles, byte volumes, query counts) are decimal strings, so
// the round trip is exact for the full range.

json::Value U64(std::uint64_t v) { return json::Value::String(std::to_string(v)); }

std::uint64_t ParseU64(const json::Value& obj, const std::string& key) {
  const std::string& s = obj.Str(key);
  SC_CHECK_MSG(!s.empty() && s.size() <= 20, "bad u64 field '" << key << "'");
  std::uint64_t v = 0;
  for (const char c : s) {
    SC_CHECK_MSG(c >= '0' && c <= '9', "bad u64 field '" << key << "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    SC_CHECK_MSG(v <= (UINT64_MAX - digit) / 10,
                 "u64 overflow in field '" << key << "'");
    v = v * 10 + digit;
  }
  return v;
}

json::Value Num(long long v) {
  return json::Value::Number(static_cast<double>(v));
}

long long NumLL(const json::Value& obj, const std::string& key) {
  const double d = obj.Num(key);
  SC_CHECK_MSG(std::nearbyint(d) == d && std::abs(d) < 9.007199254740992e15,
               "non-integral JSON field '" << key << "'");
  return static_cast<long long>(d);
}

int NumInt(const json::Value& obj, const std::string& key) {
  const long long v = NumLL(obj, key);
  SC_CHECK_MSG(v >= INT32_MIN && v <= INT32_MAX,
               "out-of-range JSON field '" << key << "'");
  return static_cast<int>(v);
}

bool BoolAt(const json::Value& obj, const std::string& key) {
  const json::Value& v = obj.At(key);
  SC_CHECK_MSG(v.kind == json::Value::Kind::kBool,
               "JSON key '" << key << "' is not a bool");
  return v.boolean;
}

const json::Value& ArrayAt(const json::Value& obj, const std::string& key) {
  const json::Value& v = obj.At(key);
  SC_CHECK_MSG(v.kind == json::Value::Kind::kArray,
               "JSON key '" << key << "' is not an array");
  return v;
}

std::uint32_t FloatBits(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof u);
  return u;
}

float BitsToFloat(std::uint32_t u) {
  float f = 0;
  std::memcpy(&f, &u, sizeof f);
  return f;
}

// --- Victim construction -------------------------------------------------

nn::Network MakeVictim(const std::string& name, std::uint64_t seed) {
  SC_CHECK_MSG(name == "lenet" || name == "convnet" || name == "alexnet",
               "unknown campaign victim '" << name << "'");
  if (name == "lenet") return models::MakeLeNet(seed);
  if (name == "convnet") return models::MakeConvNet(seed);
  return models::MakeAlexNet(seed);
}

// The weight phase's target: the victim's first convolution as a fused
// conv+ReLU stage. The zoo victims carry zero biases (the structure attack
// never reads them), but Algorithm 2 recovers w/b ratios and needs biases
// bounded away from zero — so the campaign equips the stage with
// case-study biases (mixed signs, |b| in [0.05, 0.5], the §4.2 convention)
// drawn deterministically from the campaign seed. These are the oracle's
// secrets; the attack itself only sees the geometry.
struct WeightStage {
  attack::SparseConvOracle::StageSpec spec;
  nn::Tensor weights;
  nn::Tensor bias;
  int num_filters = 0;
};

WeightStage MakeWeightStage(const nn::Network& net, const CampaignConfig& cfg) {
  const nn::Conv2D* conv = nullptr;
  for (int i = 0; i < net.num_nodes() && conv == nullptr; ++i)
    conv = dynamic_cast<const nn::Conv2D*>(&net.layer(i));
  SC_CHECK_MSG(conv != nullptr, "victim has no convolution layer");
  SC_CHECK_MSG(conv->in_depth() == net.input_shape()[0],
               "first convolution does not read the network input");

  WeightStage stage;
  stage.spec.in_depth = conv->in_depth();
  stage.spec.in_width = net.input_shape()[1];
  stage.spec.filter = conv->filter();
  stage.spec.stride = conv->stride();
  stage.spec.pad = conv->pad();
  stage.weights = conv->weights();

  stage.bias = nn::Tensor(nn::Shape{conv->out_depth()});
  Rng rng(cfg.seed * 0x9E3779B97F4A7C15ULL + 0x5EC7E7);
  for (int k = 0; k < conv->out_depth(); ++k) {
    const float mag = rng.UniformF(0.05f, 0.5f);
    stage.bias[static_cast<std::size_t>(k)] = rng.Chance(0.5) ? mag : -mag;
  }

  stage.num_filters = conv->out_depth();
  if (cfg.max_weight_filters > 0 && cfg.max_weight_filters < stage.num_filters)
    stage.num_filters = cfg.max_weight_filters;
  return stage;
}

// --- Payload encode/decode -----------------------------------------------
//
// Fresh runs encode unit results to JSON and *every* consumer decodes them
// back — the same path a resumed run takes through the checkpoint file.
// Resume-equivalence is therefore structural, not incidental: both runs
// feed downstream units byte-identical data.

json::Value EncodeAcquisition(const attack::AcquisitionAnalysis& a) {
  json::Value v = json::Value::Object();
  v.object["analyzable"] = json::Value::Bool(a.analyzable);
  json::Value obs = json::Value::Array();
  for (const attack::LayerObservation& o : a.observations) {
    json::Value e = json::Value::Object();
    e.object["segment"] = Num(o.segment);
    e.object["role"] = Num(static_cast<int>(o.role));
    e.object["size_ifm"] = Num(o.size_ifm);
    e.object["size_ofm"] = Num(o.size_ofm);
    e.object["size_fltr"] = Num(o.size_fltr);
    e.object["cycles"] = U64(o.cycles);
    e.object["bytes"] = U64(o.bytes_accessed);
    e.object["reads_input"] = json::Value::Bool(o.reads_network_input);
    json::Value inputs = json::Value::Array();
    for (const attack::ObservedInput& in : o.inputs) {
      json::Value ie = json::Value::Object();
      json::Value writers = json::Value::Array();
      for (const int w : in.writer_segments) writers.array.push_back(Num(w));
      ie.object["writers"] = std::move(writers);
      ie.object["elems"] = Num(in.elems);
      inputs.array.push_back(std::move(ie));
    }
    e.object["inputs"] = std::move(inputs);
    obs.array.push_back(std::move(e));
  }
  v.object["obs"] = std::move(obs);
  return v;
}

attack::AcquisitionAnalysis DecodeAcquisition(const json::Value& v) {
  attack::AcquisitionAnalysis a;
  a.analyzable = BoolAt(v, "analyzable");
  for (const json::Value& e : ArrayAt(v, "obs").array) {
    attack::LayerObservation o;
    o.segment = NumInt(e, "segment");
    const int role = NumInt(e, "role");
    SC_CHECK_MSG(role >= 0 && role <= 3, "bad segment role " << role);
    o.role = static_cast<attack::SegmentRole>(role);
    o.size_ifm = NumLL(e, "size_ifm");
    o.size_ofm = NumLL(e, "size_ofm");
    o.size_fltr = NumLL(e, "size_fltr");
    o.cycles = ParseU64(e, "cycles");
    o.bytes_accessed = ParseU64(e, "bytes");
    o.reads_network_input = BoolAt(e, "reads_input");
    for (const json::Value& ie : ArrayAt(e, "inputs").array) {
      attack::ObservedInput in;
      for (const json::Value& w : ArrayAt(ie, "writers").array) {
        SC_CHECK_MSG(w.kind == json::Value::Kind::kNumber, "bad writer entry");
        const double d = w.number;
        SC_CHECK_MSG(std::nearbyint(d) == d && std::abs(d) <= INT32_MAX,
                     "bad writer segment");
        in.writer_segments.push_back(static_cast<int>(d));
      }
      in.elems = NumLL(ie, "elems");
      o.inputs.push_back(std::move(in));
    }
    a.observations.push_back(std::move(o));
  }
  return a;
}

json::Value EncodeStructure(const attack::RobustStructureResult& r) {
  std::ostringstream csv;
  attack::WriteStructuresCsv(csv, r.search);
  double conf = 0.0;
  for (const attack::LayerConsensus& c : r.consensus) conf += c.confidence();
  if (!r.consensus.empty()) conf /= static_cast<double>(r.consensus.size());

  json::Value v = json::Value::Object();
  v.object["csv"] = json::Value::String(csv.str());
  v.object["slack_used"] = Num(r.slack_used);
  v.object["acquisitions"] = Num(r.acquisitions);
  v.object["analyzable"] = Num(r.analyzable);
  v.object["usable"] = Num(r.usable);
  v.object["num_structures"] =
      Num(static_cast<long long>(r.search.structures.size()));
  v.object["consensus_confidence"] = json::Value::Number(conf);
  return v;
}

json::Value EncodeFilter(const attack::RecoveredFilter& f,
                         std::uint64_t samples, std::uint64_t retries) {
  json::Value v = json::Value::Object();
  v.object["channel"] = Num(f.channel);
  v.object["bias_positive"] = json::Value::Bool(f.bias_positive);
  json::Value bits = json::Value::Array();
  for (std::size_t i = 0; i < f.ratio.numel(); ++i)
    bits.array.push_back(
        json::Value::Number(static_cast<double>(FloatBits(f.ratio[i]))));
  v.object["ratio_bits"] = std::move(bits);
  json::Value zero = json::Value::Array();
  for (const bool z : f.is_zero) zero.array.push_back(Num(z ? 1 : 0));
  v.object["is_zero"] = std::move(zero);
  json::Value failed = json::Value::Array();
  for (const bool x : f.failed) failed.array.push_back(Num(x ? 1 : 0));
  v.object["failed"] = std::move(failed);
  v.object["queries"] = U64(f.queries);
  v.object["rebrackets"] = U64(f.rebrackets);
  v.object["samples"] = U64(samples);
  v.object["retries"] = U64(retries);
  return v;
}

std::vector<bool> DecodeBitArray(const json::Value& obj,
                                 const std::string& key, std::size_t want) {
  std::vector<bool> out;
  for (const json::Value& e : ArrayAt(obj, key).array) {
    SC_CHECK_MSG(e.kind == json::Value::Kind::kNumber &&
                     (e.number == 0.0 || e.number == 1.0),
                 "bad bit entry in '" << key << "'");
    out.push_back(e.number == 1.0);
  }
  SC_CHECK_MSG(out.size() == want, "wrong '" << key << "' length");
  return out;
}

attack::RecoveredFilter DecodeFilter(const json::Value& v,
                                     const WeightStage& stage) {
  const std::size_t positions =
      static_cast<std::size_t>(stage.spec.in_depth) *
      static_cast<std::size_t>(stage.spec.filter) *
      static_cast<std::size_t>(stage.spec.filter);

  attack::RecoveredFilter f;
  f.channel = NumInt(v, "channel");
  f.bias_positive = BoolAt(v, "bias_positive");
  f.ratio = nn::Tensor(
      nn::Shape{stage.spec.in_depth, stage.spec.filter, stage.spec.filter});
  const json::Value& bits = ArrayAt(v, "ratio_bits");
  SC_CHECK_MSG(bits.array.size() == positions, "wrong ratio_bits length");
  for (std::size_t i = 0; i < positions; ++i) {
    const json::Value& e = bits.array[i];
    SC_CHECK_MSG(e.kind == json::Value::Kind::kNumber &&
                     std::nearbyint(e.number) == e.number &&
                     e.number >= 0.0 && e.number <= 4294967295.0,
                 "bad ratio bit pattern");
    f.ratio[i] = BitsToFloat(static_cast<std::uint32_t>(e.number));
  }
  f.is_zero = DecodeBitArray(v, "is_zero", positions);
  f.failed = DecodeBitArray(v, "failed", positions);
  f.queries = ParseU64(v, "queries");
  f.rebrackets = ParseU64(v, "rebrackets");
  return f;
}

double FilterConfidence(const json::Value& payload) {
  const json::Value& failed = ArrayAt(payload, "failed");
  if (failed.array.empty()) return 0.0;
  std::size_t ok = 0;
  for (const json::Value& e : failed.array) {
    SC_CHECK_MSG(e.kind == json::Value::Kind::kNumber &&
                     (e.number == 0.0 || e.number == 1.0),
                 "bad bit entry in 'failed'");
    if (e.number == 0.0) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(failed.array.size());
}

// Fully decodes a checkpoint-restored payload, exercising every field the
// result assembly reads later. A fingerprint-valid but malformed payload
// must be caught here — where the restore branch demotes the unit to
// kFailedFatal and reruns nothing — not throw out of RunCampaign after all
// the remaining work has completed.
void ValidateRestoredPayload(const std::string& id, const json::Value& payload,
                             const WeightStage& stage) {
  if (id.rfind("acquire:", 0) == 0) {
    DecodeAcquisition(payload);
  } else if (id == "structure") {
    payload.Str("csv");
    NumInt(payload, "analyzable");
    NumInt(payload, "usable");
    NumLL(payload, "slack_used");
    SC_CHECK_MSG(NumLL(payload, "num_structures") >= 0,
                 "negative num_structures");
    payload.Num("consensus_confidence");
  } else {
    DecodeFilter(payload, stage);
  }
}

// --- Fingerprint ---------------------------------------------------------

json::Value FingerprintSolver(const attack::SolverConfig& s) {
  json::Value v = json::Value::Object();
  v.object["bias_in_filter_region"] = json::Value::Bool(s.bias_in_filter_region);
  v.object["enforce_coverage"] = json::Value::Bool(s.enforce_coverage);
  v.object["exact_conv_division"] = json::Value::Bool(s.exact_conv_division);
  v.object["exact_pool_division"] = json::Value::Bool(s.exact_pool_division);
  v.object["canonical_padding"] = json::Value::Bool(s.canonical_padding);
  v.object["max_pool_window"] = Num(s.max_pool_window);
  v.object["allow_pool_padding"] = json::Value::Bool(s.allow_pool_padding);
  v.object["half_filter_padding"] = json::Value::Bool(s.half_filter_padding);
  v.object["forbid_pool_upsample"] = json::Value::Bool(s.forbid_pool_upsample);
  v.object["max_standalone_pool_window"] = Num(s.max_standalone_pool_window);
  v.object["max_candidates"] = Num(static_cast<long long>(s.max_candidates));
  v.object["size_slack"] = Num(s.size_slack);
  return v;
}

json::Value FingerprintStructure(const attack::RobustStructureConfig& s) {
  json::Value v = json::Value::Object();
  json::Value ladder = json::Value::Array();
  for (const long long rung : s.slack_ladder) ladder.array.push_back(Num(rung));
  v.object["slack_ladder"] = std::move(ladder);
  v.object["identical_modules"] =
      json::Value::Bool(s.attack.assume_identical_modules);

  json::Value a = json::Value::Object();
  a.object["element_bytes"] = Num(s.attack.analysis.element_bytes);
  a.object["region_gap"] = U64(s.attack.analysis.region_gap);
  a.object["known_input_elems"] = Num(s.attack.analysis.known_input_elems);
  a.object["input_elems_slack"] = Num(s.attack.analysis.input_elems_slack);
  v.object["analysis"] = std::move(a);

  const attack::SearchConfig& sc = s.attack.search;
  json::Value q = json::Value::Object();
  q.object["timing_tolerance"] = json::Value::Number(sc.timing_tolerance);
  q.object["macs_per_cycle"] = Num(sc.macs_per_cycle);
  q.object["bytes_per_cycle"] = Num(sc.bytes_per_cycle);
  q.object["known_input_width"] = Num(sc.known_input_width);
  q.object["known_input_depth"] = Num(sc.known_input_depth);
  q.object["known_output_classes"] = Num(sc.known_output_classes);
  json::Value groups = json::Value::Array();
  for (const std::vector<int>& g : sc.identical_groups) {
    json::Value ge = json::Value::Array();
    for (const int m : g) ge.array.push_back(Num(m));
    groups.array.push_back(std::move(ge));
  }
  q.object["identical_groups"] = std::move(groups);
  q.object["max_structures"] = Num(static_cast<long long>(sc.max_structures));
  q.object["solver"] = FingerprintSolver(sc.solver);
  v.object["search"] = std::move(q);
  return v;
}

json::Value FingerprintTraceNoise(const sim::TraceNoiseConfig& n) {
  json::Value v = json::Value::Object();
  v.object["seed"] = U64(n.seed);
  v.object["drop"] = json::Value::Number(n.drop_prob);
  v.object["jitter"] = json::Value::Number(n.jitter_prob);
  v.object["max_jitter"] = U64(n.max_jitter_cycles);
  v.object["split"] = json::Value::Number(n.split_prob);
  v.object["merge"] = json::Value::Number(n.merge_prob);
  v.object["spurious"] = json::Value::Number(n.spurious_prob);
  return v;
}

json::Value FingerprintWeights(const CampaignConfig& cfg) {
  json::Value v = json::Value::Object();
  v.object["votes"] = Num(cfg.weights.voting.votes);
  v.object["max_retries"] = Num(cfg.weights.voting.max_retries);
  v.object["search_radius_bits"] =
      Num(static_cast<long long>(FloatBits(cfg.weights.attack.search_radius)));
  v.object["rel_tolerance_bits"] =
      Num(static_cast<long long>(FloatBits(cfg.weights.attack.rel_tolerance)));
  v.object["max_bisect_iters"] = Num(cfg.weights.attack.max_bisect_iters);
  v.object["max_rebrackets"] = Num(cfg.weights.attack.max_rebrackets);
  json::Value o = json::Value::Object();
  o.object["seed"] = U64(cfg.oracle_noise.seed);
  o.object["count_noise_prob"] =
      json::Value::Number(cfg.oracle_noise.count_noise_prob);
  o.object["max_count_delta"] = Num(cfg.oracle_noise.max_count_delta);
  o.object["failure_prob"] = json::Value::Number(cfg.oracle_noise.failure_prob);
  v.object["oracle_noise"] = std::move(o);
  return v;
}

// --- Unit ids ------------------------------------------------------------

std::string AcquireId(int k) { return "acquire:" + std::to_string(k); }
std::string WeightsId(int k) { return "weights:" + std::to_string(k); }

double UnitConfidence(const std::string& id, const json::Value& payload) {
  if (id.rfind("acquire:", 0) == 0)
    return BoolAt(payload, "analyzable") ? 1.0 : 0.0;
  if (id == "structure") return payload.Num("consensus_confidence");
  return FilterConfidence(payload);
}

}  // namespace

const char* ToString(UnitStatus s) {
  switch (s) {
    case UnitStatus::kDone: return "done";
    case UnitStatus::kSkipped: return "skipped";
    case UnitStatus::kFailedTransient: return "failed-transient";
    case UnitStatus::kFailedFatal: return "failed-fatal";
    case UnitStatus::kCancelled: return "cancelled";
  }
  return "?";
}

std::string CampaignFingerprint(const CampaignConfig& cfg) {
  json::Value v = json::Value::Object();
  v.object["victim"] = json::Value::String(cfg.victim);
  v.object["seed"] = U64(cfg.seed);
  // Traces (and everything derived from them) are backend-specific, so a
  // checkpoint written under one dataflow must not resume under another.
  v.object["dataflow"] = json::Value::String(accel::ToString(cfg.dataflow));
  v.object["acquisitions"] = Num(cfg.acquisitions);
  v.object["trace_noise"] = FingerprintTraceNoise(cfg.trace_noise);
  v.object["structure"] = FingerprintStructure(cfg.structure);
  v.object["recover_weights"] = json::Value::Bool(cfg.recover_weights);
  v.object["max_weight_filters"] = Num(cfg.max_weight_filters);
  v.object["weights"] = FingerprintWeights(cfg);
  return json::Dump(v);
}

CampaignConfig MakeVictimCampaign(const std::string& victim,
                                  std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.victim = victim;
  cfg.seed = seed;
  cfg.acquisitions = 3;
  cfg.trace_noise = sim::ReferenceTraceNoise(seed);
  cfg.oracle_noise = sim::ReferenceOracleNoise(seed);
  cfg.weights = attack::ReferenceRobustWeightConfig();

  attack::StructureAttackConfig& atk = cfg.structure.attack;
  if (victim == "lenet") {
    atk.analysis.known_input_elems = 28 * 28;
    atk.search.known_input_width = 28;
    atk.search.known_input_depth = 1;
    atk.search.known_output_classes = 10;
  } else if (victim == "convnet") {
    atk.analysis.known_input_elems = 3 * 32 * 32;
    atk.search.known_input_width = 32;
    atk.search.known_input_depth = 3;
    atk.search.known_output_classes = 10;
  } else if (victim == "alexnet") {
    atk.analysis.known_input_elems = 3LL * 227 * 227;
    atk.search.known_input_width = 227;
    atk.search.known_input_depth = 3;
    atk.search.known_output_classes = 1000;
    cfg.recover_weights = false;  // 96x3x11x11: nightly-scale sweep
  } else {
    SC_CHECK_MSG(false, "unknown campaign victim '" << victim << "'");
  }
  return cfg;
}

CampaignResult RunCampaign(const CampaignConfig& cfg) {
  SC_CHECK_MSG(cfg.acquisitions >= 1, "campaign needs >= 1 acquisition");
  SC_CHECK_MSG(cfg.max_transient_failures >= 1, "transient budget must be >= 1");
  const std::string fingerprint = CampaignFingerprint(cfg);

  Checkpoint cp(fingerprint);
  if (!cfg.checkpoint_path.empty() &&
      std::filesystem::exists(cfg.checkpoint_path)) {
    cp = Checkpoint::LoadFile(cfg.checkpoint_path, fingerprint);
  }

  // --- Trace store (DESIGN.md §14) ----------------------------------------
  // Persisted acquisitions live next to the checkpoint; the corpus manifest
  // is fingerprint-gated like the checkpoint, but it indexes a *cache* of
  // recomputable artifacts — a corrupt or foreign manifest means "rebuild",
  // not "refuse to run".
  const bool store_enabled =
      cfg.persist_traces && !cfg.checkpoint_path.empty();
  const std::filesystem::path store_dir = cfg.checkpoint_path + ".traces";
  const std::string corpus_path = (store_dir / "corpus.json").string();
  store::Corpus corpus(fingerprint);
  if (store_enabled) {
    std::filesystem::create_directories(store_dir);
    if (std::filesystem::exists(corpus_path)) {
      try {
        corpus = store::Corpus::LoadFile(corpus_path, fingerprint);
      } catch (const std::exception&) {
        corpus = store::Corpus(fingerprint);
      }
    }
  }

  const nn::Network net = MakeVictim(cfg.victim, cfg.seed);
  const WeightStage stage = MakeWeightStage(net, cfg);
  const int num_filters = cfg.recover_weights ? stage.num_filters : 0;
  const std::size_t num_units =
      static_cast<std::size_t>(cfg.acquisitions) + 1 +
      static_cast<std::size_t>(num_filters);

  // Threaded stop token: the campaign's token is also polled inside the
  // structure search / consensus and the weight bisection loops.
  attack::RobustStructureConfig scfg = cfg.structure;
  scfg.attack.search.cancel = cfg.cancel;
  // Attack sees the victim backend's schedule (datasheet knowledge, derived
  // from cfg.dataflow — not separately fingerprinted). Only consulted when
  // the bandwidth timing model is enabled.
  if (!scfg.attack.search.schedule) {
    accel::AcceleratorConfig acfg;
    acfg.dataflow = cfg.dataflow;
    scfg.attack.search.schedule = accel::Accelerator{acfg}.schedule_model();
  }
  attack::WeightAttackConfig wcfg = cfg.weights.attack;
  wcfg.cancel = cfg.cancel;

  CampaignResult result;
  result.units.resize(num_units);
  result.filter_done.assign(static_cast<std::size_t>(num_filters), false);
  result.filters.resize(static_cast<std::size_t>(num_filters));
  result.filter_confidence.assign(static_cast<std::size_t>(num_filters), 0.0);

  std::mutex mu;  // checkpoint + stuck list
  std::atomic<int> transients{0};

  {
    Watchdog dog(cfg.stuck_after_s, [&](const std::string& unit, double s) {
      (void)s;
      Metrics().stuck.Add();
      const std::lock_guard<std::mutex> lock(mu);
      result.stuck_units.push_back(unit);
    });

    // Runs one unit through the full lifecycle: checkpoint short-circuit,
    // stop/budget pre-checks, execution, classification, persistence.
    auto run_unit = [&](std::size_t slot, const std::string& id,
                        const std::function<json::Value()>& work) {
      UnitResult& ur = result.units[slot];
      ur.id = id;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (cp.Has(id)) {
          try {
            const json::Value& payload = cp.Payload(id);
            ValidateRestoredPayload(id, payload, stage);
            ur.confidence = UnitConfidence(id, payload);
            ur.status = UnitStatus::kDone;
            ur.from_checkpoint = true;
            Metrics().from_checkpoint.Add();
          } catch (const Error& e) {
            ur.status = UnitStatus::kFailedFatal;
            ur.error = std::string("corrupt checkpointed payload: ") + e.what();
            Metrics().failed_fatal.Add();
          }
          return;
        }
      }
      if (cfg.cancel.stop_requested()) {
        ur.status = UnitStatus::kSkipped;
        ur.error = cfg.cancel.reason() == support::StopReason::kDeadline
                       ? "deadline expired before unit started"
                       : "cancelled before unit started";
        Metrics().skipped.Add();
        return;
      }
      if (transients.load(std::memory_order_relaxed) >=
          cfg.max_transient_failures) {
        ur.status = UnitStatus::kSkipped;
        ur.error = "transient failure budget exhausted";
        Metrics().skipped.Add();
        return;
      }

      json::Value payload;
      try {
        const Watchdog::Scope guard(dog, id);
        const obs::ScopedTimer timer(Metrics().unit_ns);
        payload = work();
      } catch (const CancelledError& e) {
        ur.status = UnitStatus::kCancelled;
        ur.error = e.what();
        Metrics().cancelled.Add();
        return;
      } catch (const TransientError& e) {
        ur.status = UnitStatus::kFailedTransient;
        ur.error = e.what();
        transients.fetch_add(1, std::memory_order_relaxed);
        Metrics().failed_transient.Add();
        return;
      } catch (const std::exception& e) {
        ur.status = UnitStatus::kFailedFatal;
        ur.error = e.what();
        Metrics().failed_fatal.Add();
        return;
      }

      {
        const std::lock_guard<std::mutex> lock(mu);
        cp.Record(id, payload);
        if (!cfg.checkpoint_path.empty()) {
          try {
            cp.SaveFile(cfg.checkpoint_path);
            Metrics().saves.Add();
          } catch (const std::exception& e) {
            // The unit's work is done and its payload lives in memory, so
            // the campaign keeps it (kDone) and carries on; only resume
            // coverage is lost. A persistent I/O problem (disk full) spends
            // the transient budget and degrades the campaign gracefully
            // instead of unwinding it with hours of work on board.
            ur.error = std::string("checkpoint save failed: ") + e.what();
            transients.fetch_add(1, std::memory_order_relaxed);
            Metrics().save_failures.Add();
          }
        }
      }
      ur.status = UnitStatus::kDone;
      ur.confidence = UnitConfidence(id, payload);
      Metrics().done.Add();
      if (cfg.on_unit_finished) cfg.on_unit_finished(id);
    };

    // --- Wave 1: acquisitions (parallel) ---------------------------------
    const sim::TraceNoiseModel noise(cfg.trace_noise);
    const std::string noise_desc =
        cfg.trace_noise.enabled()
            ? json::Dump(FingerprintTraceNoise(cfg.trace_noise))
            : "";

    // Rehydrates `unit` from the store. A missing, corrupt or foreign
    // persisted trace is a cache miss (empty optional), never an error —
    // the caller falls back to regeneration.
    auto load_persisted =
        [&](const std::string& unit) -> std::optional<trace::Trace> {
      if (!store_enabled) return std::nullopt;
      std::string file;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (corpus.Has(unit)) file = corpus.Get(unit).file;
      }
      if (file.empty()) return std::nullopt;
      try {
        json::Value meta;
        trace::Trace t =
            store::ReadTraceFile((store_dir / file).string(), &meta);
        SC_CHECK_MSG(meta.Has("fingerprint") &&
                         meta.At("fingerprint").kind ==
                             json::Value::Kind::kString &&
                         meta.At("fingerprint").str == fingerprint,
                     "persisted trace fingerprint mismatch");
        Metrics().traces_rehydrated.Add();
        return t;
      } catch (const std::exception&) {
        return std::nullopt;
      }
    };

    // Persists `t` as `file` then decodes it back, so a fresh run feeds the
    // analysis the exact bytes a resumed run will rehydrate — the
    // checkpoint's encode/decode discipline, extended to trace data. A
    // store I/O failure returns `t` unchanged: persistence is best-effort,
    // losing it degrades resume, never the campaign's results.
    auto persist_and_reload = [&](const std::string& unit,
                                  const std::string& file,
                                  trace::Trace t) -> trace::Trace {
      if (!store_enabled) return t;
      try {
        json::Value meta = json::Value::Object();
        meta.object["unit"] = json::Value::String(unit);
        meta.object["victim"] = json::Value::String(cfg.victim);
        meta.object["seed"] = U64(cfg.seed);
        meta.object["dataflow"] =
            json::Value::String(accel::ToString(cfg.dataflow));
        meta.object["noise"] =
            json::Value::String(unit == "clean" ? "" : noise_desc);
        meta.object["fingerprint"] = json::Value::String(fingerprint);
        store::WriteTraceFile((store_dir / file).string(), t, std::move(meta));
        store::Corpus::Entry e;
        e.file = file;
        e.victim = cfg.victim;
        e.seed = cfg.seed;
        e.dataflow = accel::ToString(cfg.dataflow);
        e.noise = unit == "clean" ? "" : noise_desc;
        e.events = t.size();
        {
          const std::lock_guard<std::mutex> lock(mu);
          corpus.Record(unit, std::move(e));
          corpus.SaveFile(corpus_path);
        }
        trace::Trace back = store::ReadTraceFile((store_dir / file).string());
        Metrics().traces_persisted.Add();
        return back;
      } catch (const std::exception&) {
        return t;
      }
    };

    // The clean capture is materialized lazily: a resumed campaign whose
    // acquisitions are all checkpointed or persisted never re-simulates
    // the victim.
    std::optional<trace::Trace> clean;
    std::once_flag clean_once;
    auto get_clean = [&]() -> const trace::Trace& {
      std::call_once(clean_once, [&]() {
        if (auto t = load_persisted("clean")) {
          clean.emplace(std::move(*t));
          return;
        }
        accel::AcceleratorConfig acfg;
        acfg.dataflow = cfg.dataflow;
        const accel::Accelerator accel{acfg};
        nn::Tensor input(net.input_shape());
        Rng rng(cfg.seed);
        for (std::size_t i = 0; i < input.numel(); ++i)
          input[i] = rng.GaussianF(1.0f);
        trace::Trace t;
        accel.Run(net, input, &t);
        clean.emplace(persist_and_reload("clean", "clean.sct", std::move(t)));
      });
      return *clean;
    };

    auto acquire_body = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t k = lo; k < hi; ++k) {
        const int idx = static_cast<int>(k);
        const std::string id = AcquireId(idx);
        run_unit(static_cast<std::size_t>(k), id, [&]() {
          if (auto t = load_persisted(id))
            return EncodeAcquisition(attack::AnalyzeAcquisition(*t, scfg));
          if (!store_enabled) {
            if (cfg.trace_noise.enabled()) {
              // Pooled acquisition: the per-worker trace keeps its chunk
              // storage across the K draws, so a large-K campaign corrupts
              // traces with zero steady-state allocation.
              thread_local trace::Trace acq;
              noise.ApplyNthTo(get_clean(), static_cast<std::uint64_t>(idx),
                               &acq);
              return EncodeAcquisition(attack::AnalyzeAcquisition(acq, scfg));
            }
            return EncodeAcquisition(
                attack::AnalyzeAcquisition(get_clean(), scfg));
          }
          trace::Trace acq =
              cfg.trace_noise.enabled()
                  ? noise.ApplyNth(get_clean(), static_cast<std::uint64_t>(idx))
                  : get_clean();
          acq = persist_and_reload(
              id, "acquire_" + std::to_string(idx) + ".sct", std::move(acq));
          return EncodeAcquisition(attack::AnalyzeAcquisition(acq, scfg));
        });
      }
    };
    if (cfg.acquisitions < 2 || support::ThreadPool::GlobalThreads() <= 1 ||
        support::InParallelRegion()) {
      acquire_body(0, cfg.acquisitions);
    } else {
      support::ParallelFor(0, cfg.acquisitions, 1, acquire_body);
    }

    // --- Wave 2: structure consensus search ------------------------------
    const std::size_t structure_slot =
        static_cast<std::size_t>(cfg.acquisitions);
    bool all_acquired = true;
    for (int k = 0; k < cfg.acquisitions; ++k)
      if (!cp.Has(AcquireId(k))) all_acquired = false;

    if (!all_acquired && !cfg.cancel.stop_requested()) {
      UnitResult& ur = result.units[structure_slot];
      ur.id = "structure";
      ur.status = UnitStatus::kSkipped;
      ur.error = "missing acquisition units";
      Metrics().skipped.Add();
    } else {
      run_unit(structure_slot, "structure", [&]() {
        std::vector<attack::AcquisitionAnalysis> analyses;
        for (int k = 0; k < cfg.acquisitions; ++k)
          analyses.push_back(DecodeAcquisition(cp.Payload(AcquireId(k))));
        return EncodeStructure(attack::ConsensusSearch(analyses, scfg));
      });
    }

    // --- Wave 3: per-filter weight recovery (parallel) -------------------
    auto weights_body = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t k = lo; k < hi; ++k) {
        const int filter = static_cast<int>(k);
        const std::size_t slot = structure_slot + 1 + static_cast<std::size_t>(k);
        run_unit(slot, WeightsId(filter), [&]() {
          attack::SparseConvOracle base(stage.spec, stage.weights, stage.bias);
          std::unique_ptr<attack::ZeroCountOracle> probe;
          if (cfg.oracle_noise.enabled()) {
            const sim::NoisyOracle noisy(base, cfg.oracle_noise);
            probe = noisy.Fork(static_cast<std::uint64_t>(filter));
          } else {
            probe = base.Fork(static_cast<std::uint64_t>(filter));
          }
          SC_CHECK_MSG(probe != nullptr, "oracle fork failed");
          attack::VotingOracle voter(*probe, cfg.weights.voting);
          attack::WeightAttack attack(voter, stage.spec, wcfg);
          const attack::RecoveredFilter f = attack.RecoverFilter(filter);
          return EncodeFilter(f, voter.samples(), voter.retries());
        });
      }
    };
    if (num_filters > 0) {
      if (num_filters < 2 || support::ThreadPool::GlobalThreads() <= 1 ||
          support::InParallelRegion()) {
        weights_body(0, num_filters);
      } else {
        support::ParallelFor(0, num_filters, 1, weights_body);
      }
    }
  }  // watchdog joins here

  // --- Result assembly (decode everything back from payloads) ------------
  for (const UnitResult& ur : result.units) {
    switch (ur.status) {
      case UnitStatus::kDone:
        ++result.done;
        if (ur.from_checkpoint) ++result.from_checkpoint;
        result.overall_confidence += ur.confidence;
        break;
      case UnitStatus::kSkipped: ++result.skipped; break;
      case UnitStatus::kFailedTransient: ++result.failed_transient; break;
      case UnitStatus::kFailedFatal: ++result.failed_fatal; break;
      case UnitStatus::kCancelled: ++result.cancelled; break;
    }
  }
  if (result.done > 0)
    result.overall_confidence /= static_cast<double>(result.done);
  result.complete = result.done == static_cast<int>(num_units);
  result.stop_reason = cfg.cancel.reason();

  const std::size_t structure_slot = static_cast<std::size_t>(cfg.acquisitions);
  if (result.units[structure_slot].status == UnitStatus::kDone) {
    const json::Value& p = cp.Payload("structure");
    result.structure_done = true;
    result.structure_csv = p.Str("csv");
    result.analyzable = NumInt(p, "analyzable");
    result.usable = NumInt(p, "usable");
    result.slack_used = NumLL(p, "slack_used");
    result.num_structures = static_cast<std::size_t>(NumLL(p, "num_structures"));
  }

  std::string filter_csv = "filter,c,i,j,ratio_bits,ratio,zero,failed\n";
  for (int k = 0; k < num_filters; ++k) {
    const std::size_t slot = structure_slot + 1 + static_cast<std::size_t>(k);
    if (result.units[slot].status != UnitStatus::kDone) continue;
    const json::Value& p = cp.Payload(WeightsId(k));
    attack::RecoveredFilter f = DecodeFilter(p, stage);
    result.filter_confidence[static_cast<std::size_t>(k)] =
        FilterConfidence(p);
    result.filter_done[static_cast<std::size_t>(k)] = true;
    const int fw = stage.spec.filter;
    for (int c = 0; c < stage.spec.in_depth; ++c) {
      for (int i = 0; i < fw; ++i) {
        for (int j = 0; j < fw; ++j) {
          const std::size_t pos =
              static_cast<std::size_t>((c * fw + i) * fw + j);
          char row[128];
          std::snprintf(row, sizeof row, "%d,%d,%d,%d,0x%08x,%.9g,%d,%d\n", k,
                        c, i, j, FloatBits(f.ratio[pos]),
                        static_cast<double>(f.ratio[pos]),
                        f.is_zero[pos] ? 1 : 0, f.failed[pos] ? 1 : 0);
          filter_csv += row;
        }
      }
    }
    result.filters[static_cast<std::size_t>(k)] = std::move(f);
  }
  result.filter_csv = std::move(filter_csv);

  if (!cfg.output_dir.empty()) {
    std::filesystem::create_directories(cfg.output_dir);
    const std::filesystem::path dir(cfg.output_dir);
    if (result.structure_done) {
      std::ofstream f(dir / "structure_candidates.csv");
      SC_CHECK_MSG(f.is_open(), "cannot write structure_candidates.csv");
      f << result.structure_csv;
    }
    if (num_filters > 0) {
      std::ofstream f(dir / "filter_ratios.csv");
      SC_CHECK_MSG(f.is_open(), "cannot write filter_ratios.csv");
      f << result.filter_csv;
    }
  }
  return result;
}

}  // namespace sc::campaign
