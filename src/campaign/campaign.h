// Campaign supervisor (DESIGN.md §12): checkpoint/resume, deadlines,
// cancellation and graceful degradation for long-running attacks.
//
// A campaign decomposes a full reverse-engineering run against one victim
// into independent, individually-checkpointable units:
//
//   acquire:k   analyze the k-th noisy acquisition of the victim's trace
//               (sim::TraceNoiseModel::ApplyNth keys the fault pattern by k);
//   structure   consensus vote + slack-ladder candidate search over the
//               checkpointed acquisition analyses;
//   weights:k   Algorithm-2 ratio recovery for output filter k of the
//               victim's first convolution (oracle noise forked by k).
//
// Every completed unit's payload is persisted through an atomic
// write-then-rename JSON checkpoint, so a killed campaign resumes by
// re-running only the unfinished units — and, because each unit's RNG
// stream is a function of the campaign seed and the unit index alone, the
// resumed run's artifacts are byte-identical to an uninterrupted run's.
//
// Degradation: a unit that throws is recorded (transient / fatal /
// cancelled, per the check.h taxonomy) and the campaign carries on until
// the transient budget, a deadline, or a cancel request stops it; the
// partial CampaignResult always reports a status for every unit and never
// loses completed work.
#ifndef SC_CAMPAIGN_CAMPAIGN_H_
#define SC_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "accel/dataflow.h"
#include "attack/structure/robust.h"
#include "attack/weights/robust.h"
#include "sim/noise.h"
#include "sim/noisy_oracle.h"
#include "support/cancel.h"

namespace sc::campaign {

enum class UnitStatus {
  kDone,             // payload computed (this run) or restored (checkpoint)
  kSkipped,          // never attempted: stop already requested, transient
                     //   budget exhausted, or a dependency is missing
  kFailedTransient,  // sc::TransientError — retryable on a later run
  kFailedFatal,      // any other error — retrying cannot help
  kCancelled,        // unwound mid-unit by cancel/deadline
};

const char* ToString(UnitStatus s);

struct UnitResult {
  std::string id;
  UnitStatus status = UnitStatus::kSkipped;
  std::string error;             // why, for every non-done status; a done
                                 //   unit may carry a checkpoint-save warning
  bool from_checkpoint = false;  // done without re-running
  // acquire: 1.0 iff the acquisition was analyzable; structure: mean
  // consensus confidence; weights: fraction of positions recovered.
  double confidence = 0.0;
};

struct CampaignConfig {
  // Victim model: "lenet", "convnet" or "alexnet" (models/zoo.h), built
  // with `seed` (weights + the campaign's input/bias streams).
  std::string victim = "lenet";
  std::uint64_t seed = 1;

  // Victim accelerator's dataflow backend (accel/backend.h). Part of the
  // checkpoint fingerprint: traces and attack results from different
  // backends are not interchangeable, so resume rejects a checkpoint
  // recorded under the other dataflow.
  accel::Dataflow dataflow = accel::DefaultDataflow();

  // Structure phase: number of independent acquisitions and the probe
  // fault model (all-zero rates = clean, identical acquisitions).
  int acquisitions = 1;
  sim::TraceNoiseConfig trace_noise;
  // structure.attack.search.cancel is overridden with `cancel` below.
  attack::RobustStructureConfig structure;

  // Weight phase: per-filter ratio recovery against the victim's first
  // convolution. 0 filters = max_weight_filters limits the sweep for quick
  // runs (0 = every output channel). weights.attack.cancel is overridden
  // with `cancel` below.
  bool recover_weights = true;
  int max_weight_filters = 0;
  sim::OracleNoiseConfig oracle_noise;
  attack::RobustWeightConfig weights;

  // Empty = run without persistence. An existing file is validated against
  // the config fingerprint and resumed from; sc::Error on corruption or a
  // foreign fingerprint.
  std::string checkpoint_path;
  // When true and a checkpoint path is set, the clean capture and every
  // acquisition's observed trace are persisted as sct-v1 files (store/)
  // under "<checkpoint_path>.traces/", indexed by a corpus.json manifest
  // carrying the campaign fingerprint. A resumed (or rerun) campaign
  // rehydrates acquisition analyses from the persisted bytes instead of
  // re-simulating the victim; fresh runs analyze the same decoded bytes
  // they just wrote, so both paths are byte-identical by construction.
  // Store I/O failures degrade to regeneration, never fail a unit. Not
  // part of the fingerprint: persistence changes where trace bytes live,
  // never what any unit computes.
  bool persist_traces = true;
  // Non-empty: structure_candidates.csv and filter_ratios.csv are written
  // here (directories are created).
  std::string output_dir;

  // Cooperative stop switch for the whole campaign (cancel + deadline).
  support::CancelToken cancel;
  // The campaign stops launching new units once this many transient unit
  // failures have accumulated (completed units are kept, the rest are
  // skipped). Must be >= 1.
  int max_transient_failures = 3;
  // Watchdog: units in flight longer than this are flagged (never killed);
  // <= 0 disables.
  double stuck_after_s = 0.0;

  // Test/instrumentation hook: invoked after a unit's payload has been
  // checkpointed (possibly concurrently from worker threads). The resume
  // tests use it to cancel mid-campaign at an exact unit count.
  std::function<void(const std::string& unit)> on_unit_finished;
};

// Campaign preset for one of the zoo victims: threat-model priors (input
// geometry, class count), reference noise levels at `seed`, 3 acquisitions
// and the reference robust weight config. AlexNet disables the weight
// phase by default (a 96x3x11x11 sweep is nightly material).
CampaignConfig MakeVictimCampaign(const std::string& victim,
                                  std::uint64_t seed = 1);

// Canonical JSON of every result-affecting config field. Two configs with
// equal fingerprints produce interchangeable checkpoints.
std::string CampaignFingerprint(const CampaignConfig& cfg);

struct CampaignResult {
  bool complete = false;  // every unit done
  support::StopReason stop_reason = support::StopReason::kNone;
  std::vector<UnitResult> units;

  int done = 0;
  int from_checkpoint = 0;
  int skipped = 0;
  int failed_transient = 0;
  int failed_fatal = 0;
  int cancelled = 0;
  // Mean unit confidence over done units (0 when nothing finished).
  double overall_confidence = 0.0;
  // Units the watchdog flagged as stuck (they still ran to completion or
  // were cancelled; this is a diagnosis, not an action).
  std::vector<std::string> stuck_units;

  // Structure phase (valid iff structure_done).
  bool structure_done = false;
  std::string structure_csv;  // WriteStructuresCsv of the consensus search
  int analyzable = 0;
  int usable = 0;
  long long slack_used = 0;
  std::size_t num_structures = 0;

  // Weight phase; entry k is valid iff filter_done[k].
  std::vector<bool> filter_done;
  std::vector<attack::RecoveredFilter> filters;
  std::vector<double> filter_confidence;
  std::string filter_csv;  // rows only for recovered filters
};

// Runs (or resumes) the campaign described by `cfg`. Throws sc::Error only
// for setup problems (unknown victim, unusable checkpoint file); unit
// failures — including deadline expiry and cancellation — degrade into
// per-unit statuses on the returned partial result instead.
CampaignResult RunCampaign(const CampaignConfig& cfg);

}  // namespace sc::campaign

#endif  // SC_CAMPAIGN_CAMPAIGN_H_
