// Stuck-unit watchdog (DESIGN.md §12).
//
// Campaign units are pure computations with no I/O waits, so a unit that
// has made no progress for far longer than its peers is a symptom (a
// livelocked solver search, a pathological bisection). The watchdog is a
// single background thread that scans the registry of in-flight units once
// a second; any unit older than the configured threshold is reported once
// via a callback (for logging / metrics), never killed — cancellation stays
// cooperative and is the CancelSource's job.
#ifndef SC_CAMPAIGN_WATCHDOG_H_
#define SC_CAMPAIGN_WATCHDOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace sc::campaign {

class Watchdog {
 public:
  // `on_stuck(unit_id, elapsed_seconds)` fires at most once per unit
  // registration, from the watchdog thread. `stuck_after_s <= 0` disables
  // the watchdog entirely (no thread is started).
  Watchdog(double stuck_after_s,
           std::function<void(const std::string&, double)> on_stuck);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // RAII registration for one in-flight unit.
  class Scope {
   public:
    Scope(Watchdog& dog, std::string unit) : dog_(dog), unit_(std::move(unit)) {
      dog_.Register(unit_);
    }
    ~Scope() { dog_.Unregister(unit_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Watchdog& dog_;
    std::string unit_;
  };

  std::uint64_t stuck_reports() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point start;
    bool reported = false;
  };

  void Register(const std::string& unit);
  void Unregister(const std::string& unit);
  void Run();

  const double stuck_after_s_;
  const std::function<void(const std::string&, double)> on_stuck_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::uint64_t reports_ = 0;
  std::map<std::string, Entry> inflight_;
  std::thread thread_;  // last: joins in ~Watchdog after shutdown_
};

}  // namespace sc::campaign

#endif  // SC_CAMPAIGN_WATCHDOG_H_
