#include "campaign/watchdog.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace sc::campaign {

Watchdog::Watchdog(double stuck_after_s,
                   std::function<void(const std::string&, double)> on_stuck)
    : stuck_after_s_(stuck_after_s), on_stuck_(std::move(on_stuck)) {
  if (stuck_after_s_ > 0) thread_ = std::thread([this] { Run(); });
}

Watchdog::~Watchdog() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::stuck_reports() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

void Watchdog::Register(const std::string& unit) {
  if (!thread_.joinable()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  inflight_[unit] = Entry{std::chrono::steady_clock::now(), false};
}

void Watchdog::Unregister(const std::string& unit) {
  if (!thread_.joinable()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(unit);
}

void Watchdog::Run() {
  // Poll at a quarter of the threshold, clamped to [0.5 ms, 1 s]: a unit
  // that exceeds stuck_after_s is then observed in flight regardless of how
  // small the threshold is, while hour-scale thresholds poll once a second.
  const auto interval = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::duration<double>(
          std::clamp(stuck_after_s_ / 4.0, 0.0005, 1.0)));
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    cv_.wait_for(lock, interval);
    if (shutdown_) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<std::string, double>> stuck;
    for (auto& [unit, entry] : inflight_) {
      if (entry.reported) continue;
      const double elapsed =
          std::chrono::duration<double>(now - entry.start).count();
      if (elapsed >= stuck_after_s_) {
        entry.reported = true;
        ++reports_;
        stuck.emplace_back(unit, elapsed);
      }
    }
    if (stuck.empty() || !on_stuck_) continue;
    // Callback outside the lock: it may log or touch the registry, and the
    // worker threads must stay free to Unregister meanwhile.
    lock.unlock();
    for (const auto& [unit, elapsed] : stuck) on_stuck_(unit, elapsed);
    lock.lock();
  }
}

}  // namespace sc::campaign
