// Atomic campaign checkpoints (DESIGN.md §12).
//
// A checkpoint records the payload of every *completed* unit of a
// campaign, keyed by unit id ("acquire:3", "structure", "weights:17").
// Units that failed, were cancelled or never ran are not recorded — they
// simply rerun on resume, which is safe because every unit is a pure
// function of the campaign config (seeded RNG streams fork per unit).
//
// The file is JSON with a schema tag and a config fingerprint; loading
// rejects corrupt files, foreign schemas and checkpoints written by a
// different campaign configuration (the fingerprint covers every
// result-affecting knob). Saving is crash-safe: the new content is
// written to "<path>.tmp" and atomically renamed over the target, so a
// kill at any instant leaves either the previous or the new checkpoint,
// never a torn file.
#ifndef SC_CAMPAIGN_CHECKPOINT_H_
#define SC_CAMPAIGN_CHECKPOINT_H_

#include <cstddef>
#include <map>
#include <string>

#include "support/json.h"

namespace sc::campaign {

class Checkpoint {
 public:
  Checkpoint() = default;
  explicit Checkpoint(std::string fingerprint)
      : fingerprint_(std::move(fingerprint)) {}

  const std::string& fingerprint() const { return fingerprint_; }
  std::size_t size() const { return units_.size(); }

  bool Has(const std::string& unit) const { return units_.count(unit) > 0; }

  // Payload of a completed unit; throws sc::Error when absent.
  const support::json::Value& Payload(const std::string& unit) const;

  // Records (or overwrites) a completed unit's payload.
  void Record(const std::string& unit, support::json::Value payload);

  // Canonical serialization: {"schema":...,"fingerprint":...,"units":{...}}.
  std::string Serialize() const;

  // Parses and validates a serialized checkpoint. Throws sc::Error on
  // malformed JSON, a foreign schema tag, or — when expected_fingerprint
  // is non-empty — a fingerprint mismatch.
  static Checkpoint Parse(const std::string& text,
                          const std::string& expected_fingerprint);

  // Atomic write-then-rename to `path` (tmp file: path + ".tmp").
  void SaveFile(const std::string& path) const;

  // Loads and validates `path`. Throws sc::Error when the file cannot be
  // read or Parse rejects it.
  static Checkpoint LoadFile(const std::string& path,
                             const std::string& expected_fingerprint);

  static constexpr const char* kSchema = "sc-campaign-v1";

 private:
  std::string fingerprint_;
  std::map<std::string, support::json::Value> units_;
};

}  // namespace sc::campaign

#endif  // SC_CAMPAIGN_CHECKPOINT_H_
