// sct-v1 trace encoder (DESIGN.md §14).
//
// StoreWriter serializes a Trace's columnar buffer into the sct-v1 byte
// layout (store/format.h): delta/varint cycle and address columns,
// varint burst sizes, a bitpacked op column, CRC32C per chunk, and a
// self-describing header carrying caller metadata (acquisition keys,
// config fingerprints) as one canonical JSON object.
//
// Encoding is a pure function of the trace and the metadata — two encodes
// of the same inputs are byte-identical, which the golden .sct artifact
// and the campaign's resume-equivalence contract rely on. WriteFile is
// crash-safe: write-then-rename, like campaign checkpoints.
#ifndef SC_STORE_WRITER_H_
#define SC_STORE_WRITER_H_

#include <string>

#include "support/json.h"
#include "trace/trace.h"

namespace sc::store {

class StoreWriter {
 public:
  StoreWriter() : meta_(support::json::Value::Object()) {}

  // Metadata embedded in the header. Must be a JSON object; it is dumped
  // canonically, so logically equal metadata never perturbs the bytes.
  void set_meta(support::json::Value meta);
  const support::json::Value& meta() const { return meta_; }

  // Serializes `t` to an sct-v1 byte string.
  std::string Encode(const trace::Trace& t) const;

  // Atomic write-then-rename of Encode(t) to `path` (tmp: path + ".tmp").
  void WriteFile(const std::string& path, const trace::Trace& t) const;

 private:
  support::json::Value meta_;
};

// One-shot convenience used by the accel capture hook and the campaign.
void WriteTraceFile(const std::string& path, const trace::Trace& t,
                    support::json::Value meta = support::json::Value::Object());

}  // namespace sc::store

#endif  // SC_STORE_WRITER_H_
