#include "store/corpus.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/check.h"

namespace sc::store {

namespace json = support::json;

namespace {

// JSON numbers are doubles; a 64-bit seed would not survive one. Seeds
// travel as decimal strings, event counts (always far below 2^53) as
// integer-validated numbers.
std::uint64_t ParseU64(const std::string& s, const char* what) {
  SC_CHECK_MSG(!s.empty() && s.size() <= 20, "bad corpus " << what);
  std::uint64_t v = 0;
  for (const char c : s) {
    SC_CHECK_MSG(c >= '0' && c <= '9', "bad corpus " << what);
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    SC_CHECK_MSG(v <= (UINT64_MAX - d) / 10, "corpus " << what
                                                       << " overflows u64");
    v = v * 10 + d;
  }
  return v;
}

std::uint64_t CountFromNumber(double d, const char* what) {
  SC_CHECK_MSG(d >= 0 && d <= 9007199254740992.0 && d == std::floor(d),
               "bad corpus " << what);
  return static_cast<std::uint64_t>(d);
}

}  // namespace

const Corpus::Entry& Corpus::Get(const std::string& name) const {
  const auto it = entries_.find(name);
  SC_CHECK_MSG(it != entries_.end(), "no corpus entry '" << name << "'");
  return it->second;
}

void Corpus::Record(const std::string& name, Entry e) {
  entries_[name] = std::move(e);
}

std::vector<std::string> Corpus::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, e] : entries_) names.push_back(name);
  return names;
}

std::string Corpus::Serialize() const {
  json::Value root = json::Value::Object();
  root.object["schema"] = json::Value::String(kSchema);
  root.object["fingerprint"] = json::Value::String(fingerprint_);
  json::Value traces = json::Value::Object();
  for (const auto& [name, e] : entries_) {
    json::Value t = json::Value::Object();
    t.object["file"] = json::Value::String(e.file);
    t.object["victim"] = json::Value::String(e.victim);
    t.object["seed"] = json::Value::String(std::to_string(e.seed));
    t.object["dataflow"] = json::Value::String(e.dataflow);
    t.object["noise"] = json::Value::String(e.noise);
    t.object["events"] = json::Value::Number(static_cast<double>(e.events));
    traces.object[name] = std::move(t);
  }
  root.object["traces"] = std::move(traces);
  return json::Dump(root);
}

Corpus Corpus::Parse(const std::string& text,
                     const std::string& expected_fingerprint) {
  const json::Value root = json::Parse(text);  // throws sc::Error on garbage
  SC_CHECK_MSG(root.kind == json::Value::Kind::kObject,
               "corpus root is not an object");
  SC_CHECK_MSG(root.Has("schema") &&
                   root.At("schema").kind == json::Value::Kind::kString,
               "corpus missing schema tag");
  SC_CHECK_MSG(root.At("schema").str == kSchema,
               "foreign corpus schema '" << root.At("schema").str << "' (want "
                                         << kSchema << ")");
  SC_CHECK_MSG(root.Has("fingerprint") &&
                   root.At("fingerprint").kind == json::Value::Kind::kString,
               "corpus missing fingerprint");
  const std::string& fp = root.At("fingerprint").str;
  if (!expected_fingerprint.empty()) {
    SC_CHECK_MSG(fp == expected_fingerprint,
                 "corpus fingerprint mismatch: manifest was written by a "
                 "differently configured campaign");
  }
  SC_CHECK_MSG(root.Has("traces") &&
                   root.At("traces").kind == json::Value::Kind::kObject,
               "corpus missing traces object");

  Corpus c(fp);
  for (const auto& [name, t] : root.At("traces").object) {
    SC_CHECK_MSG(t.kind == json::Value::Kind::kObject,
                 "corpus entry '" << name << "' is not an object");
    Entry e;
    e.file = t.Str("file");
    SC_CHECK_MSG(!e.file.empty() && e.file.find('/') == std::string::npos &&
                     e.file.find('\\') == std::string::npos &&
                     e.file != "." && e.file != "..",
                 "corpus entry '" << name
                                  << "' file must be a plain file name");
    e.victim = t.Str("victim");
    e.seed = ParseU64(t.Str("seed"), "seed");
    e.dataflow = t.Str("dataflow");
    e.noise = t.Str("noise");
    e.events = CountFromNumber(t.Num("events"), "event count");
    c.entries_[name] = std::move(e);
  }
  return c;
}

void Corpus::SaveFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    SC_CHECK_MSG(f.is_open(), "cannot open " << tmp << " for writing");
    f << Serialize();
    f.flush();
    SC_CHECK_MSG(static_cast<bool>(f), "write failure on " << tmp);
  }
  SC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename " << tmp << " over " << path);
}

Corpus Corpus::LoadFile(const std::string& path,
                        const std::string& expected_fingerprint) {
  std::ifstream f(path, std::ios::binary);
  SC_CHECK_MSG(f.is_open(), "cannot open corpus " << path);
  std::ostringstream text;
  text << f.rdbuf();
  return Parse(text.str(), expected_fingerprint);
}

}  // namespace sc::store
