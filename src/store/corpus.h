// Corpus manifest for a directory of .sct acquisitions (DESIGN.md §14).
//
// A Corpus names every persisted trace in a campaign's store directory:
// which victim network, which acquisition seed, which dataflow backend and
// noise stream produced it, and where the bytes live. The manifest is JSON
// ("sc-corpus-v1") with the same config fingerprint the campaign
// checkpoint carries, so stores from a different configuration are never
// silently mixed into a resume.
//
// Unlike checkpoints, a corpus is a *cache*: every trace is recomputable
// from the campaign config, so a corrupt or foreign manifest is grounds to
// rebuild, not to abort. Parse/LoadFile still reject malformed input with
// typed errors (hostile-input standard); callers decide whether rejection
// is fatal.
#ifndef SC_STORE_CORPUS_H_
#define SC_STORE_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/json.h"

namespace sc::store {

class Corpus {
 public:
  // One persisted acquisition. `file` is relative to the manifest's
  // directory; the remaining fields echo the acquisition's provenance so
  // tooling can select traces without opening them.
  struct Entry {
    std::string file;
    std::string victim;       // victim network name, e.g. "lenet"
    std::uint64_t seed = 0;   // campaign base seed
    std::string dataflow;     // accelerator dataflow backend
    std::string noise;        // noise/fault model summary ("" = clean)
    std::uint64_t events = 0; // event count, mirrors the sct header
  };

  Corpus() = default;
  explicit Corpus(std::string fingerprint)
      : fingerprint_(std::move(fingerprint)) {}

  const std::string& fingerprint() const { return fingerprint_; }
  std::size_t size() const { return entries_.size(); }

  bool Has(const std::string& name) const { return entries_.count(name) > 0; }

  // Entry for acquisition `name` (e.g. "acquire:3"); throws when absent.
  const Entry& Get(const std::string& name) const;

  // Records (or overwrites) acquisition `name`.
  void Record(const std::string& name, Entry e);

  // Acquisition names in manifest (sorted) order.
  std::vector<std::string> Names() const;

  // Canonical serialization:
  // {"schema":"sc-corpus-v1","fingerprint":...,"traces":{...}}.
  std::string Serialize() const;

  // Parses and validates a manifest. Throws sc::Error on malformed JSON, a
  // foreign schema, missing/mistyped fields, or — when expected_fingerprint
  // is non-empty — a fingerprint mismatch.
  static Corpus Parse(const std::string& text,
                      const std::string& expected_fingerprint);

  // Atomic write-then-rename to `path` (tmp file: path + ".tmp").
  void SaveFile(const std::string& path) const;

  // Loads and validates `path`; throws sc::Error on I/O or Parse failure.
  static Corpus LoadFile(const std::string& path,
                         const std::string& expected_fingerprint);

  static constexpr const char* kSchema = "sc-corpus-v1";

 private:
  std::string fingerprint_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sc::store

#endif  // SC_STORE_CORPUS_H_
