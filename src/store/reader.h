// sct-v1 streaming trace decoder (DESIGN.md §14).
//
// StoreReader validates the self-describing header eagerly, then decodes
// chunk by chunk on demand: NextChunk() hands out a TraceBuffer::ChunkView
// over reader-owned column scratch — the same shape the analysis passes
// (SegmentTrace / AnalyzeTrace) stream — so single-pass consumers (sctool
// stats, corpus scans) never materialize the whole trace, and ReadAll()
// bulk-copies each decoded chunk straight into a TraceBuffer with no
// per-event object churn.
//
// Hostile-input contract (same standard as Trace::ReadCsv and checkpoint
// JSON): arbitrary bytes either decode into a valid trace or throw
// sc::Error — bounded varints, CRC32C verification per chunk and for the
// header, exact payload/file consumption, and every TraceBuffer validity
// rule (non-empty bursts, non-decreasing cycles, bursts inside the address
// space). Allocation is bounded by the validated chunk geometry, so a tiny
// forged header cannot demand huge buffers.
#ifndef SC_STORE_READER_H_
#define SC_STORE_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "support/json.h"
#include "trace/trace.h"
#include "trace/trace_buffer.h"

namespace sc::store {

class StoreReader {
 public:
  // Decoded header fields. The three stat fields are redundant with the
  // chunk data and re-validated once the final chunk streams.
  struct Header {
    std::uint64_t event_count = 0;
    std::uint64_t chunk_count = 0;
    std::uint64_t last_cycle = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    support::json::Value meta;
  };

  // Parses and validates the header; throws sc::Error on anything that is
  // not a well-formed sct-v1 prefix. Chunks are validated as they stream.
  static StoreReader FromString(std::string bytes);
  static StoreReader OpenFile(const std::string& path);

  const Header& header() const { return header_; }

  // Decodes the next chunk into reader-owned scratch and points `out` at
  // it; the view stays valid until the next call. Returns false once every
  // chunk has streamed (at which point the header stats have been verified
  // against the decoded totals).
  bool NextChunk(trace::TraceBuffer::ChunkView* out);

  // Streams every remaining chunk into a Trace (bulk column appends).
  trace::Trace ReadAll();

  StoreReader(StoreReader&&) = default;
  StoreReader& operator=(StoreReader&&) = default;

 private:
  StoreReader() = default;

  struct Scratch;

  std::string bytes_;
  Header header_;
  std::size_t pos_ = 0;          // next unread byte (first chunk header)
  std::uint64_t chunks_done_ = 0;
  std::uint64_t prev_cycle_ = 0;
  std::uint64_t prev_addr_ = 0;
  std::uint64_t events_done_ = 0;
  std::uint64_t read_bytes_ = 0;     // decoded burst totals, per direction
  std::uint64_t written_bytes_ = 0;
  std::shared_ptr<Scratch> scratch_;  // lazily allocated column buffers
};

// One-shot convenience: decode `path` fully; optionally surfaces the
// header metadata.
trace::Trace ReadTraceFile(const std::string& path,
                           support::json::Value* meta = nullptr);

}  // namespace sc::store

#endif  // SC_STORE_READER_H_
