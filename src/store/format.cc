#include "store/format.h"

#include <array>

namespace sc::store {

namespace {

// Slicing-by-8 CRC32C: eight derived tables let the hot loop fold eight
// input bytes per iteration, keeping checksumming well below the varint
// decode cost it guards.
struct CrcTables {
  std::uint32_t t[8][256];
};

constexpr CrcTables BuildTables() {
  CrcTables tables{};
  constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int s = 1; s < 8; ++s) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[s][i] = crc;
    }
  }
  return tables;
}

constexpr CrcTables kTables = BuildTables();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~0u;
  while (len >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace sc::store
