#include "store/reader.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "store/format.h"

namespace sc::store {

namespace json = support::json;

namespace {

struct ReadMetrics {
  obs::Counter& bytes = obs::Registry::Get().GetCounter("store.read.bytes");
  obs::Counter& chunks = obs::Registry::Get().GetCounter("store.read.chunks");
  obs::Counter& crc_failures =
      obs::Registry::Get().GetCounter("store.crc_failures");
  obs::Histogram& decode_ns =
      obs::Registry::Get().GetHistogram("store.decode_ns");
};

ReadMetrics& Metrics() {
  static ReadMetrics m;
  return m;
}

}  // namespace

// One decoded chunk's columns; sized by the fixed chunk grid, so a forged
// count can never demand more than ~344 KiB.
struct StoreReader::Scratch {
  std::uint64_t cycles[trace::TraceBuffer::kChunkEvents];
  std::uint64_t addrs[trace::TraceBuffer::kChunkEvents];
  std::uint32_t bytes[trace::TraceBuffer::kChunkEvents];
  std::uint8_t ops[trace::TraceBuffer::kChunkEvents];
};

StoreReader StoreReader::FromString(std::string bytes) {
  StoreReader r;
  r.bytes_ = std::move(bytes);
  const std::uint8_t* base =
      reinterpret_cast<const std::uint8_t*>(r.bytes_.data());
  SC_CHECK_MSG(r.bytes_.size() >= kFixedHeaderBytes + 4,
               "sct file truncated: " << r.bytes_.size()
                                      << " bytes is smaller than the header");
  SC_CHECK_MSG(std::memcmp(base, kMagic, sizeof kMagic) == 0,
               "not an sct file (bad magic)");
  const std::uint32_t version = GetU32(base + 8);
  SC_CHECK_MSG(version == kFormatVersion,
               "unsupported sct version " << version);
  const std::uint32_t meta_len = GetU32(base + 12);
  SC_CHECK_MSG(meta_len <= kMaxMetaBytes,
               "sct metadata length " << meta_len << " exceeds cap");
  SC_CHECK_MSG(meta_len <= r.bytes_.size() - kFixedHeaderBytes - 4,
               "sct file truncated inside metadata");
  r.header_.event_count = GetU64(base + 16);
  r.header_.chunk_count = GetU64(base + 24);
  r.header_.last_cycle = GetU64(base + 32);
  r.header_.bytes_read = GetU64(base + 40);
  r.header_.bytes_written = GetU64(base + 48);

  const std::size_t crc_at = kFixedHeaderBytes + meta_len;
  const std::uint32_t want_crc = GetU32(base + crc_at);
  const std::uint32_t got_crc = Crc32c(base, crc_at);
  if (got_crc != want_crc) {
    Metrics().crc_failures.Add();
    SC_CHECK_MSG(false, "sct header CRC mismatch (file corrupt)");
  }
  const std::string meta_text = r.bytes_.substr(kFixedHeaderBytes, meta_len);
  r.header_.meta = json::Parse(meta_text);
  SC_CHECK_MSG(r.header_.meta.kind == json::Value::Kind::kObject,
               "sct metadata must be a JSON object");
  // sct-v1 is canonical (one encoding per contents); metadata that is not
  // in Dump's canonical form was not written by StoreWriter.
  SC_CHECK_MSG(json::Dump(r.header_.meta) == meta_text,
               "sct metadata is not in canonical form");
  r.pos_ = crc_at + 4;

  // Geometry sanity before any chunk streams: the chunk grid must mirror
  // TraceBuffer's (full chunks then one 1..kChunkEvents tail), and the
  // remaining bytes must at least fit the claimed chunk headers.
  constexpr std::uint64_t kChunkEvents = trace::TraceBuffer::kChunkEvents;
  const Header& h = r.header_;
  if (h.chunk_count == 0) {
    SC_CHECK_MSG(h.event_count == 0,
                 "sct header claims events but no chunks");
    SC_CHECK_MSG(h.last_cycle == 0 && h.bytes_read == 0 &&
                     h.bytes_written == 0,
                 "sct header stats nonzero for an empty trace");
  } else {
    SC_CHECK_MSG(h.event_count > (h.chunk_count - 1) * kChunkEvents &&
                     h.event_count <= h.chunk_count * kChunkEvents,
                 "sct header event/chunk counts do not mirror the chunk grid");
  }
  SC_CHECK_MSG(h.chunk_count <=
                   (r.bytes_.size() - r.pos_) / kChunkHeaderBytes,
               "sct file truncated: too small for " << h.chunk_count
                                                    << " chunks");
  if (h.chunk_count == 0)
    SC_CHECK_MSG(r.pos_ == r.bytes_.size(),
                 "trailing bytes after sct chunks");
  return r;
}

StoreReader StoreReader::OpenFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path);
  std::ostringstream ss;
  ss << f.rdbuf();
  SC_CHECK_MSG(!f.bad(), "read failure on " << path);
  return FromString(std::move(ss).str());
}

bool StoreReader::NextChunk(trace::TraceBuffer::ChunkView* out) {
  if (chunks_done_ == header_.chunk_count) return false;
  const obs::ScopedTimer timer(Metrics().decode_ns);
  if (!scratch_) scratch_ = std::make_shared<Scratch>();
  Scratch& s = *scratch_;
  constexpr std::uint64_t kChunkEvents = trace::TraceBuffer::kChunkEvents;

  const std::uint8_t* base =
      reinterpret_cast<const std::uint8_t*>(bytes_.data());
  SC_CHECK_MSG(bytes_.size() - pos_ >= kChunkHeaderBytes,
               "sct file truncated inside chunk header");
  const std::uint32_t count = GetU32(base + pos_);
  const std::uint32_t payload_len = GetU32(base + pos_ + 4);
  const std::uint32_t want_crc = GetU32(base + pos_ + 8);
  const bool last = chunks_done_ + 1 == header_.chunk_count;
  const std::uint64_t expect =
      last ? header_.event_count - (header_.chunk_count - 1) * kChunkEvents
           : kChunkEvents;
  SC_CHECK_MSG(count == expect, "sct chunk " << chunks_done_ << " holds "
                                             << count << " events, expected "
                                             << expect);
  SC_CHECK_MSG(payload_len <= bytes_.size() - pos_ - kChunkHeaderBytes,
               "sct file truncated inside chunk payload");
  const std::uint8_t* p = base + pos_ + kChunkHeaderBytes;
  const std::uint8_t* end = p + payload_len;
  if (Crc32c(p, payload_len) != want_crc) {
    Metrics().crc_failures.Add();
    SC_CHECK_MSG(false,
                 "sct chunk " << chunks_done_ << " CRC mismatch (corrupt)");
  }

  // Column streams, in file order. Every TraceBuffer validity rule is
  // enforced here so AppendColumns-based rebuilds cannot trip a CHECK on
  // data that got past the decoder.
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t delta = GetVarint(&p, end);
    SC_CHECK_MSG(delta <= UINT64_MAX - prev_cycle_,
                 "sct cycle column overflows 64 bits");
    prev_cycle_ += delta;
    s.cycles[i] = prev_cycle_;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    prev_addr_ += UnZigZag(GetVarint(&p, end));  // modular; validated below
    s.addrs[i] = prev_addr_;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t b = GetVarint(&p, end);
    SC_CHECK_MSG(b > 0, "sct burst size 0");
    SC_CHECK_MSG(b <= UINT32_MAX, "sct burst size " << b << " overflows u32");
    SC_CHECK_MSG(s.addrs[i] <= UINT64_MAX - b,
                 "sct burst runs past the end of the address space");
    s.bytes[i] = static_cast<std::uint32_t>(b);
  }
  const std::size_t bitmap_len = (count + 7) / 8;
  SC_CHECK_MSG(static_cast<std::size_t>(end - p) >= bitmap_len,
               "sct chunk payload truncated before op bitmap");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t v = (p[i / 8] >> (i % 8)) & 1u;
    s.ops[i] = v;
    if (static_cast<trace::MemOp>(v) == trace::MemOp::kRead)
      read_bytes_ += s.bytes[i];
    else
      written_bytes_ += s.bytes[i];
  }
  // Canonical form: bits past the last event in the final bitmap byte are
  // zero (the writer never sets them).
  if (count % 8 != 0)
    SC_CHECK_MSG(p[bitmap_len - 1] >> (count % 8) == 0,
                 "sct op bitmap has stray bits");
  p += bitmap_len;
  SC_CHECK_MSG(p == end, "sct chunk payload not fully consumed");

  pos_ += kChunkHeaderBytes + payload_len;
  ++chunks_done_;
  events_done_ += count;
  Metrics().bytes.Add(kChunkHeaderBytes + payload_len);
  Metrics().chunks.Add();

  if (last) {
    // The redundant header stats and the byte stream must agree — a
    // mismatch means a forged header or a corruption the CRCs missed.
    SC_CHECK_MSG(pos_ == bytes_.size(), "trailing bytes after sct chunks");
    SC_CHECK_MSG(prev_cycle_ == header_.last_cycle &&
                     read_bytes_ == header_.bytes_read &&
                     written_bytes_ == header_.bytes_written,
                 "sct header stats disagree with decoded chunks");
  }

  *out = trace::TraceBuffer::ChunkView{
      s.cycles, s.addrs, s.bytes, s.ops, static_cast<std::size_t>(count)};
  return true;
}

trace::Trace StoreReader::ReadAll() {
  trace::TraceBuffer buf;
  trace::TraceBuffer::ChunkView v;
  while (NextChunk(&v))
    buf.AppendColumns(v.cycles, v.addrs, v.bytes, v.ops, v.count);
  return trace::Trace(std::move(buf));
}

trace::Trace ReadTraceFile(const std::string& path, json::Value* meta) {
  StoreReader r = StoreReader::OpenFile(path);
  if (meta != nullptr) *meta = r.header().meta;
  return r.ReadAll();
}

}  // namespace sc::store
