// sct-v1 binary trace format primitives (DESIGN.md §14).
//
// The §3 memory trace is the system's core data artifact; sct-v1 is its
// persisted form: a self-describing header followed by chunks whose layout
// mirrors trace::TraceBuffer's structure-of-arrays columns, so encode and
// decode are column streams, never per-event object churn.
//
// File layout (all fixed-width integers little-endian):
//
//   [ 0,  8)  magic "sctrace1"
//   [ 8, 12)  u32 version (= 1)
//   [12, 16)  u32 meta_len           canonical-JSON metadata byte length
//   [16, 24)  u64 event_count
//   [24, 32)  u64 chunk_count
//   [32, 40)  u64 last_cycle         redundant; validated on full decode
//   [40, 48)  u64 bytes_read         redundant; validated on full decode
//   [48, 56)  u64 bytes_written      redundant; validated on full decode
//   [56, 56+meta_len)  metadata: one canonical JSON object (support/json.h)
//   next 4    u32 CRC32C over every header byte before it
//   then chunk_count chunks, each:
//     u32 count        events in this chunk — exactly TraceBuffer's
//                      kChunkEvents for every chunk but the last (the chunk
//                      grid mirrors the in-memory buffer), >= 1 for the last
//     u32 payload_len  encoded column bytes that follow the chunk header
//     u32 CRC32C       over the payload
//     payload, four column streams back to back:
//       cycles  per event, varint of (cycle - previous event's cycle);
//               the stream-wide predecessor carries across chunks, 0 before
//               the first event (cycles are non-decreasing, deltas fit u64)
//       addrs   per event, varint of zigzag(addr - previous event's addr),
//               predecessor carried across chunks, 0 before the first event
//       bytes   per event, varint of the burst size
//       ops     ceil(count / 8) bytes, LSB-first bitmap, 1 = write
//
// Invariants the decoder enforces (hostile input -> typed sc::Error, never
// UB): bounded varints, per-chunk and header CRCs, exact payload
// consumption, exact file consumption, the TraceBuffer validity rules
// (non-empty bursts, non-decreasing cycles, addr + bytes inside the
// address space), and header/chunk count agreement.
#ifndef SC_STORE_FORMAT_H_
#define SC_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/check.h"

namespace sc::store {

inline constexpr char kMagic[8] = {'s', 'c', 't', 'r', 'a', 'c', 'e', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kFixedHeaderBytes = 56;
inline constexpr std::size_t kChunkHeaderBytes = 12;
// Metadata is a small JSON object (acquisition keys + a config
// fingerprint); anything larger is hostile.
inline constexpr std::uint32_t kMaxMetaBytes = 1u << 20;

// CRC32C (Castagnoli), the checksum used by the chunk and header guards.
std::uint32_t Crc32c(const void* data, std::size_t len);

// --- little-endian scalar I/O -------------------------------------------

inline void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

// Callers guarantee 4/8 readable bytes at p (the reader bounds-checks the
// enclosing slice before touching it).
inline std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// --- varints -------------------------------------------------------------

// LEB128, at most 10 bytes for a u64.
inline void PutVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

// Decodes a varint from [*p, end), advancing *p past it. Throws sc::Error
// on truncation, a value that does not fit in 64 bits, or a non-minimal
// encoding (a redundant trailing group). Rejecting redundant encodings
// makes sct-v1 canonical: every valid file is byte-identical to what
// StoreWriter emits for its contents, which the fuzzer asserts.
inline std::uint64_t GetVarint(const std::uint8_t** p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*p < end) {
    const std::uint8_t byte = *(*p)++;
    if (shift == 63)
      SC_CHECK_MSG(byte <= 1, "varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      SC_CHECK_MSG(byte != 0 || shift == 0, "non-minimal varint");
      return v;
    }
    shift += 7;
    SC_CHECK_MSG(shift <= 63, "varint overflows 64 bits");
  }
  SC_CHECK_MSG(false, "truncated varint");
  return 0;  // unreachable
}

// Address deltas can be negative (regions are revisited); zigzag keeps
// small magnitudes short in either direction. All arithmetic is modular
// u64, so the full address space round-trips.
inline std::uint64_t ZigZag(std::uint64_t delta) {
  const std::int64_t s = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(s) << 1) ^
         static_cast<std::uint64_t>(s >> 63);
}

inline std::uint64_t UnZigZag(std::uint64_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

}  // namespace sc::store

#endif  // SC_STORE_FORMAT_H_
