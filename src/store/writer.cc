#include "store/writer.h"

#include <cstdio>
#include <fstream>

#include "obs/metrics.h"
#include "store/format.h"
#include "trace/trace_buffer.h"

namespace sc::store {

namespace json = support::json;

namespace {

struct WriteMetrics {
  obs::Counter& bytes = obs::Registry::Get().GetCounter("store.write.bytes");
  obs::Counter& chunks = obs::Registry::Get().GetCounter("store.write.chunks");
  obs::Counter& files = obs::Registry::Get().GetCounter("store.write.files");
  obs::Histogram& encode_ns =
      obs::Registry::Get().GetHistogram("store.encode_ns");
};

WriteMetrics& Metrics() {
  static WriteMetrics m;
  return m;
}

}  // namespace

void StoreWriter::set_meta(json::Value meta) {
  SC_CHECK_MSG(meta.kind == json::Value::Kind::kObject,
               "sct metadata must be a JSON object");
  meta_ = std::move(meta);
}

std::string StoreWriter::Encode(const trace::Trace& t) const {
  const obs::ScopedTimer timer(Metrics().encode_ns);
  const trace::TraceBuffer& buf = t.buffer();
  const std::string meta = json::Dump(meta_);
  SC_CHECK_MSG(meta.size() <= kMaxMetaBytes, "sct metadata too large");

  std::string out;
  // ~5 payload bytes per event is the observed CNN-trace density; one
  // reserve avoids regrowth copies on AlexNet-scale encodes.
  out.reserve(kFixedHeaderBytes + meta.size() + 4 +
              buf.num_chunks() * kChunkHeaderBytes + buf.size() * 5);
  out.append(kMagic, sizeof kMagic);
  PutU32(out, kFormatVersion);
  PutU32(out, static_cast<std::uint32_t>(meta.size()));
  PutU64(out, buf.size());
  PutU64(out, buf.num_chunks());
  PutU64(out, buf.last_cycle());
  PutU64(out, buf.bytes_read());
  PutU64(out, buf.bytes_written());
  out += meta;
  PutU32(out, Crc32c(out.data(), out.size()));

  std::string payload;
  std::uint64_t prev_cycle = 0;
  std::uint64_t prev_addr = 0;
  for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
    const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
    payload.clear();
    for (std::size_t i = 0; i < v.count; ++i) {
      PutVarint(payload, v.cycles[i] - prev_cycle);
      prev_cycle = v.cycles[i];
    }
    for (std::size_t i = 0; i < v.count; ++i) {
      PutVarint(payload, ZigZag(v.addrs[i] - prev_addr));
      prev_addr = v.addrs[i];
    }
    for (std::size_t i = 0; i < v.count; ++i) PutVarint(payload, v.bytes[i]);
    std::uint8_t bits = 0;
    for (std::size_t i = 0; i < v.count; ++i) {
      bits |= static_cast<std::uint8_t>((v.ops[i] & 1u) << (i % 8));
      if (i % 8 == 7 || i + 1 == v.count) {
        payload.push_back(static_cast<char>(bits));
        bits = 0;
      }
    }
    PutU32(out, static_cast<std::uint32_t>(v.count));
    PutU32(out, static_cast<std::uint32_t>(payload.size()));
    PutU32(out, Crc32c(payload.data(), payload.size()));
    out += payload;
  }

  Metrics().bytes.Add(out.size());
  Metrics().chunks.Add(buf.num_chunks());
  return out;
}

void StoreWriter::WriteFile(const std::string& path,
                            const trace::Trace& t) const {
  const std::string bytes = Encode(t);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    SC_CHECK_MSG(f.is_open(), "cannot open " << tmp << " for writing");
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f.flush();
    SC_CHECK_MSG(static_cast<bool>(f), "write failure on " << tmp);
  }
  // POSIX rename is atomic: `path` is always either the previous store
  // file or the complete new one, never a torn encode.
  SC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename " << tmp << " over " << path);
  Metrics().files.Add();
}

void WriteTraceFile(const std::string& path, const trace::Trace& t,
                    json::Value meta) {
  StoreWriter w;
  w.set_meta(std::move(meta));
  w.WriteFile(path, t);
}

}  // namespace sc::store
