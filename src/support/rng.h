// Deterministic random number generation used across the repository.
//
// Everything in this project (weight init, synthetic datasets, property
// tests) must be reproducible from a single integer seed, so all randomness
// flows through this wrapper instead of ad-hoc std::random_device usage.
#ifndef SC_SUPPORT_RNG_H_
#define SC_SUPPORT_RNG_H_

#include <cstdint>
#include <random>

#include "support/check.h"

namespace sc {

// Seeded pseudo-random source. std::mt19937_64 is fully specified by the
// standard, so sequences are identical across platforms and compilers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    SC_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SC_CHECK(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  float UniformF(float lo, float hi) {
    return static_cast<float>(Uniform(lo, hi));
  }

  // Zero-mean Gaussian with the given standard deviation.
  double Gaussian(double stddev) {
    SC_CHECK(stddev >= 0.0);
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  float GaussianF(float stddev) {
    return static_cast<float>(Gaussian(stddev));
  }

  // Bernoulli draw with probability p of returning true.
  bool Chance(double p) {
    SC_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  // Derive an independent child seed (e.g. one Rng per dataset sample).
  std::uint64_t Fork() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// splitmix64 finalizer over (seed, k): derives a decorrelated stream seed
// for the k-th of K independent acquisitions (or forks) of one base seed.
// Shared by every per-acquisition stream in the repo (sim::TraceNoiseModel,
// defense transforms) so "stream k" means the same derivation everywhere.
inline std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (k + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace sc

#endif  // SC_SUPPORT_RNG_H_
