// Deterministic random number generation used across the repository.
//
// Everything in this project (weight init, synthetic datasets, property
// tests) must be reproducible from a single integer seed, so all randomness
// flows through this wrapper instead of ad-hoc std::random_device usage.
#ifndef SC_SUPPORT_RNG_H_
#define SC_SUPPORT_RNG_H_

#include <cstdint>
#include <random>

#include "support/check.h"

namespace sc {

// Seeded pseudo-random source. std::mt19937_64 is fully specified by the
// standard, so sequences are identical across platforms and compilers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    SC_CHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SC_CHECK(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  float UniformF(float lo, float hi) {
    return static_cast<float>(Uniform(lo, hi));
  }

  // Zero-mean Gaussian with the given standard deviation.
  double Gaussian(double stddev) {
    SC_CHECK(stddev >= 0.0);
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  float GaussianF(float stddev) {
    return static_cast<float>(Gaussian(stddev));
  }

  // Bernoulli draw with probability p of returning true.
  bool Chance(double p) {
    SC_CHECK(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  // Derive an independent child seed (e.g. one Rng per dataset sample).
  std::uint64_t Fork() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sc

#endif  // SC_SUPPORT_RNG_H_
