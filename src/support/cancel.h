// Cooperative cancellation and wall-clock deadlines (DESIGN.md §12).
//
// A CancelSource owns the stop request; CancelToken is a cheap copyable
// view handed to long-running loops. Tokens are *cooperative*: code polls
// stop_requested() / ThrowIfStopped() at natural checkpoints (solver
// recursion, consensus rounds, bisection iterations) and unwinds via the
// sc::CancelledError / sc::DeadlineExceededError taxonomy in check.h.
//
// RequestCancel() is a single lock-free atomic store, so it is safe to
// call from a POSIX signal handler (the nightly kill/resume job SIGTERMs
// bench/campaign_resilience and expects a graceful partial checkpoint).
//
// A default-constructed CancelToken is the "null" token: it never stops,
// costs one branch per poll, and lets APIs take a token unconditionally.
#ifndef SC_SUPPORT_CANCEL_H_
#define SC_SUPPORT_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>

#include "support/check.h"

namespace sc::support {

enum class StopReason { kNone, kCancelled, kDeadline };

namespace detail {

struct CancelShared {
  std::atomic<bool> cancelled{false};
  std::atomic<bool> has_deadline{false};
  // steady_clock time_since_epoch in nanoseconds; valid iff has_deadline.
  std::atomic<std::int64_t> deadline_ns{0};

  static std::int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  StopReason Reason() const {
    if (cancelled.load(std::memory_order_acquire)) return StopReason::kCancelled;
    if (has_deadline.load(std::memory_order_acquire) &&
        NowNs() >= deadline_ns.load(std::memory_order_acquire))
      return StopReason::kDeadline;
    return StopReason::kNone;
  }
};

}  // namespace detail

class CancelToken {
 public:
  // Null token: stop_requested() is always false.
  CancelToken() = default;

  bool can_stop() const { return shared_ != nullptr; }

  bool stop_requested() const {
    return shared_ && shared_->Reason() != StopReason::kNone;
  }

  StopReason reason() const {
    return shared_ ? shared_->Reason() : StopReason::kNone;
  }

  // Throws DeadlineExceededError / CancelledError when stopped; no-op
  // otherwise. `where` names the cancellation point for the message.
  void ThrowIfStopped(const char* where = "operation") const {
    if (!shared_) return;
    switch (shared_->Reason()) {
      case StopReason::kNone:
        return;
      case StopReason::kDeadline: {
        std::ostringstream os;
        os << where << ": deadline exceeded";
        throw ::sc::DeadlineExceededError(os.str());
      }
      case StopReason::kCancelled: {
        std::ostringstream os;
        os << where << ": cancelled";
        throw ::sc::CancelledError(os.str());
      }
    }
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const detail::CancelShared> s)
      : shared_(std::move(s)) {}

  std::shared_ptr<const detail::CancelShared> shared_;
};

class CancelSource {
 public:
  CancelSource() : shared_(std::make_shared<detail::CancelShared>()) {}

  CancelToken token() const { return CancelToken(shared_); }

  // Lock-free; async-signal-safe (a relaxed-release atomic store).
  void RequestCancel() {
    shared_->cancelled.store(true, std::memory_order_release);
  }

  void SetDeadline(std::chrono::steady_clock::time_point tp) {
    shared_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count(),
        std::memory_order_release);
    shared_->has_deadline.store(true, std::memory_order_release);
  }

  // Deadline `d` from now. Negative or zero durations expire immediately.
  template <class Rep, class Period>
  void SetTimeout(std::chrono::duration<Rep, Period> d) {
    SetDeadline(std::chrono::steady_clock::now() + d);
  }

  void ClearDeadline() {
    shared_->has_deadline.store(false, std::memory_order_release);
  }

  bool cancel_requested() const {
    return shared_->cancelled.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<detail::CancelShared> shared_;
};

}  // namespace sc::support

#endif  // SC_SUPPORT_CANCEL_H_
