// Shared parallel-execution subsystem.
//
// One process-wide pool of worker threads serves every parallel loop in the
// repository (layer forward passes, structure-search fan-out, weight-attack
// sweeps). Parallelism here is purely a simulator-speed concern: every
// call site partitions its work into disjoint output ranges, so results are
// bit-identical to the serial execution regardless of thread count.
//
// Thread count is runtime-configurable: the SC_THREADS environment variable
// (read once, at first use) seeds the pool size, defaulting to
// std::thread::hardware_concurrency(). Tests and benchmarks may switch the
// pool size at runtime with ThreadPool::SetGlobalThreads().
#ifndef SC_SUPPORT_THREAD_POOL_H_
#define SC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sc::support {

class ThreadPool {
 public:
  // A pool of `threads` execution lanes. The calling thread of a parallel
  // loop always participates, so only threads - 1 workers are spawned;
  // threads <= 1 spawns none and every loop runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes (spawned workers + the calling thread).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Enqueues a task for execution on a worker thread.
  void Submit(std::function<void()> task);

  // The process-wide pool, created on first use with DefaultThreads() lanes.
  static ThreadPool& Global();

  // Lane count of the global pool (creates it on first call).
  static int GlobalThreads();

  // Replaces the global pool with one of `threads` lanes. Must not be
  // called while a parallel loop is in flight; intended for tests,
  // benchmarks and command-line overrides.
  static void SetGlobalThreads(int threads);

  // SC_THREADS when set to a positive integer, else hardware concurrency
  // (at least 1).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// True while the current thread is executing inside a ParallelFor chunk.
// Nested ParallelFor calls detect this and run inline (serially) instead of
// deadlocking on pool capacity.
bool InParallelRegion();

// Splits [begin, end) into contiguous chunks of at least max(grain, 1)
// iterations and invokes fn(chunk_begin, chunk_end) for every chunk, using
// the pool's workers plus the calling thread. Chunks are claimed from a
// shared counter, so load balances across uneven iterations; each index is
// visited exactly once. Blocks until every chunk has finished.
//
// Guarantees:
//   - empty range (end <= begin): fn is never invoked;
//   - grain >= range, a 1-lane pool, or a nested call: fn(begin, end) runs
//     inline on the calling thread;
//   - an exception thrown by fn is captured and rethrown on the calling
//     thread after all in-flight chunks drain. The exception from the
//     *lowest-index* failing chunk wins deterministically (not whichever
//     worker loses the race): chunks are claimed in index order, so every
//     chunk below the winning one ran to completion, and chunks past the
//     first recorded failure are abandoned. A failing campaign therefore
//     reports the same failing unit on every run and thread count.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn,
                 ThreadPool* pool = nullptr);

}  // namespace sc::support

#endif  // SC_SUPPORT_THREAD_POOL_H_
