// Lightweight runtime-check utilities shared by all subsystems.
//
// Library code reports precondition violations and internal inconsistencies
// by throwing sc::Error (derived from std::runtime_error) so callers can
// distinguish library failures from standard-library failures and tests can
// assert on them.
#ifndef SC_SUPPORT_CHECK_H_
#define SC_SUPPORT_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace sc {

// Error type thrown by all SC_CHECK* macros and explicit validation code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace sc

// SC_CHECK(cond) / SC_CHECK_MSG(cond, streamed-message): throw sc::Error on
// failure. These are *always on* (they guard API contracts, not debug-only
// invariants), so library behaviour does not change between build types.
#define SC_CHECK(cond)                                                 \
  do {                                                                 \
    if (!(cond))                                                       \
      ::sc::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, {});  \
  } while (false)

#define SC_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream sc_check_os;                                  \
      sc_check_os << msg;                                              \
      ::sc::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,       \
                                      sc_check_os.str());              \
    }                                                                  \
  } while (false)

#endif  // SC_SUPPORT_CHECK_H_
