// Lightweight runtime-check utilities shared by all subsystems.
//
// Library code reports precondition violations and internal inconsistencies
// by throwing sc::Error (derived from std::runtime_error) so callers can
// distinguish library failures from standard-library failures and tests can
// assert on them.
#ifndef SC_SUPPORT_CHECK_H_
#define SC_SUPPORT_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace sc {

// Error type thrown by all SC_CHECK* macros and explicit validation code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// --- Error taxonomy (DESIGN.md §12) ------------------------------------
//
// Long-running campaigns need to react differently to different failure
// kinds: a transient probe failure is retryable and costs one unit of the
// campaign's failure budget, a cancellation/deadline is an orderly stop
// that must not be swallowed by retry loops, and anything else is a fatal
// programming or data error. All three derive from sc::Error so existing
// catch sites keep working.

// A retryable failure: the operation may succeed if repeated (e.g. a probe
// acquisition that returned garbage, a voting oracle that exhausted its
// per-call retry budget). Campaign supervisors count these against a
// transient-failure budget instead of aborting.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

// Cooperative-cancellation stop (operator request). Retry loops must
// rethrow this immediately — retrying a cancelled operation is never
// correct.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

// Wall-clock deadline expiry. A kind of cancellation: catch sites that
// handle CancelledError handle this too.
class DeadlineExceededError : public CancelledError {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : CancelledError(what) {}
};

enum class ErrorClass { kTransient, kCancelled, kFatal };

// Maps an in-flight exception to its campaign-level class. Unknown
// exception types (including std::exception subclasses from outside the
// taxonomy) are fatal.
inline ErrorClass Classify(const std::exception& e) {
  if (dynamic_cast<const CancelledError*>(&e) != nullptr)
    return ErrorClass::kCancelled;
  if (dynamic_cast<const TransientError*>(&e) != nullptr)
    return ErrorClass::kTransient;
  return ErrorClass::kFatal;
}

inline const char* ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kCancelled: return "cancelled";
    case ErrorClass::kFatal: return "fatal";
  }
  return "fatal";
}

namespace detail {

[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace sc

// SC_CHECK(cond) / SC_CHECK_MSG(cond, streamed-message): throw sc::Error on
// failure. These are *always on* (they guard API contracts, not debug-only
// invariants), so library behaviour does not change between build types.
#define SC_CHECK(cond)                                                 \
  do {                                                                 \
    if (!(cond))                                                       \
      ::sc::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, {});  \
  } while (false)

#define SC_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream sc_check_os;                                  \
      sc_check_os << msg;                                              \
      ::sc::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,       \
                                      sc_check_os.str());              \
    }                                                                  \
  } while (false)

#endif  // SC_SUPPORT_CHECK_H_
