#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "support/check.h"

namespace sc::support {

namespace {

thread_local bool tl_in_parallel_region = false;

// Metrics (DESIGN.md §9). Handles are cached once; recording is a relaxed
// no-op while SC_METRICS is off.
struct PoolMetrics {
  obs::Counter& tasks = obs::Registry::Get().GetCounter("pool.tasks_submitted");
  obs::Counter& parallel_for =
      obs::Registry::Get().GetCounter("pool.parallel_for_calls");
  obs::Counter& chunks = obs::Registry::Get().GetCounter("pool.chunks_run");
  obs::Counter& inline_runs =
      obs::Registry::Get().GetCounter("pool.inline_runs");
  obs::Gauge& queue_depth = obs::Registry::Get().GetGauge("pool.queue_depth");
  obs::Histogram& wait_ns =
      obs::Registry::Get().GetHistogram("pool.worker_wait_ns");
};

PoolMetrics& Metrics() {
  static PoolMetrics m;
  return m;
}

struct RegionGuard {
  // Saves and restores the previous value: a nested inline region must not
  // clear the enclosing worker's flag on exit.
  bool prev;
  RegionGuard() : prev(tl_in_parallel_region) { tl_in_parallel_region = true; }
  ~RegionGuard() { tl_in_parallel_region = prev; }
};

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SC_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    Metrics().tasks.Add();
    Metrics().queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      {
        obs::ScopedTimer wait_timer(Metrics().wait_ns);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreads());
  return *slot;
}

int ThreadPool::GlobalThreads() { return Global().threads(); }

void ThreadPool::SetGlobalThreads(int threads) {
  SC_CHECK_MSG(threads >= 1, "thread count must be >= 1");
  SC_CHECK_MSG(!tl_in_parallel_region,
               "cannot resize the global pool inside a parallel region");
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (slot && slot->threads() == threads) return;
  slot.reset();  // join the old workers before spawning the new pool
  slot = std::make_unique<ThreadPool>(threads);
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("SC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool InParallelRegion() { return tl_in_parallel_region; }

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn,
                 ThreadPool* pool) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t range = end - begin;
  const std::int64_t nchunks = (range + grain - 1) / grain;

  if (!pool) pool = &ThreadPool::Global();
  const int lanes = static_cast<int>(
      std::min<std::int64_t>(pool->threads(), nchunks));

  Metrics().parallel_for.Add();

  if (lanes <= 1 || tl_in_parallel_region) {
    Metrics().inline_runs.Add();
    RegionGuard region;
    fn(begin, end);
    return;
  }

  struct SharedState {
    std::atomic<std::int64_t> next{0};
    // Lowest chunk index that has thrown so far (INT64_MAX = none). Chunks
    // at or past this index are abandoned; chunks below it were already
    // claimed (the claim counter is monotonic), so the lowest-index failing
    // chunk always runs and its exception deterministically wins the race.
    std::atomic<std::int64_t> first_failed{INT64_MAX};
    std::int64_t begin = 0, end = 0, grain = 1, nchunks = 0;
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    int active_helpers = 0;
    std::int64_t eptr_chunk = INT64_MAX;  // chunk index eptr came from
    std::exception_ptr eptr;
  };
  // Helpers hold a shared_ptr so an abandoned queue entry (never possible
  // today, but cheap insurance) cannot dangle.
  auto state = std::make_shared<SharedState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->nchunks = nchunks;
  state->fn = &fn;

  auto run_chunks = [](SharedState& st) {
    RegionGuard region;
    for (;;) {
      const std::int64_t c = st.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= st.nchunks) return;
      // Abandon chunks at or past the lowest failure seen so far. Any
      // chunk below it was claimed earlier (monotonic counter) and runs to
      // completion, so the surviving exception is from the lowest-index
      // failing chunk on every run, regardless of the thread schedule.
      if (c >= st.first_failed.load(std::memory_order_acquire)) return;
      Metrics().chunks.Add();
      const std::int64_t lo = st.begin + c * st.grain;
      const std::int64_t hi = std::min(st.end, lo + st.grain);
      try {
        (*st.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st.mu);
        if (c < st.eptr_chunk) {
          st.eptr_chunk = c;
          st.eptr = std::current_exception();
          st.first_failed.store(c, std::memory_order_release);
        }
        return;
      }
    }
  };

  const int helpers = lanes - 1;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->active_helpers = helpers;
  }
  for (int i = 0; i < helpers; ++i) {
    pool->Submit([state, run_chunks] {
      run_chunks(*state);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->active_helpers;
      }
      state->cv.notify_one();
    });
  }

  run_chunks(*state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->active_helpers == 0; });
  if (state->eptr) std::rethrow_exception(state->eptr);
}

}  // namespace sc::support
