// Minimal JSON reader/writer shared by bench tooling and campaign
// checkpoints (no external deps).
//
// Supports objects, arrays, strings without exotic escapes, numbers,
// booleans, null. Parse errors throw sc::Error with a byte offset;
// nesting depth is capped so hostile input cannot exhaust the stack.
// Not a general-purpose parser — it reads files this repo itself wrote
// (BENCH_*.json, campaign checkpoints), plus whatever the fuzzers throw
// at it.
//
// Dump() writes a canonical form: object keys in std::map order, no
// insignificant whitespace except a newline-free single space after ':'
// is omitted — output is byte-stable for identical Values, which the
// campaign checkpoint format relies on.
#ifndef SC_SUPPORT_JSON_H_
#define SC_SUPPORT_JSON_H_

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/check.h"

namespace sc::support::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool Has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const Value& At(const std::string& key) const {
    SC_CHECK_MSG(Has(key), "missing JSON key '" << key << "'");
    return object.at(key);
  }
  double Num(const std::string& key) const {
    const Value& v = At(key);
    SC_CHECK_MSG(v.kind == Kind::kNumber,
                 "JSON key '" << key << "' is not a number");
    return v.number;
  }
  const std::string& Str(const std::string& key) const {
    const Value& v = At(key);
    SC_CHECK_MSG(v.kind == Kind::kString,
                 "JSON key '" << key << "' is not a string");
    return v.str;
  }

  static Value Null() { return Value{}; }
  static Value Bool(bool b) {
    Value v;
    v.kind = Kind::kBool;
    v.boolean = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.kind = Kind::kNumber;
    v.number = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static Value Array() {
    Value v;
    v.kind = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind = Kind::kObject;
    return v;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value Parse() {
    Value v = ParseValue(0);
    SkipWs();
    SC_CHECK_MSG(i_ == s_.size(), "trailing JSON at offset " << i_);
    return v;
  }

 private:
  // Hostile inputs must not overflow the stack: the recursive-descent
  // parser refuses nesting beyond this depth (checkpoints use ~4 levels).
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }
  char Peek() {
    SkipWs();
    SC_CHECK_MSG(i_ < s_.size(), "unexpected end of JSON");
    return s_[i_];
  }
  void Expect(char c) {
    SC_CHECK_MSG(Peek() == c, "expected '" << c << "' at offset " << i_
                                           << ", got '" << s_[i_] << "'");
    ++i_;
  }
  bool Consume(char c) {
    if (i_ < s_.size() && Peek() == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(const char* w) {
    const std::size_t len = std::string(w).size();
    if (s_.compare(i_, len, w) == 0) {
      i_ += len;
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      SC_CHECK_MSG(i_ < s_.size(), "unterminated JSON string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (c == '\\') {
        SC_CHECK_MSG(i_ < s_.size(), "unterminated escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default:
            SC_CHECK_MSG(false, "unsupported escape '\\" << e << "'");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value ParseValue(int depth) {
    SC_CHECK_MSG(depth < kMaxDepth,
                 "JSON nested deeper than " << kMaxDepth << " levels");
    const char c = Peek();
    Value v;
    if (c == '{') {
      ++i_;
      v.kind = Value::Kind::kObject;
      if (!Consume('}')) {
        do {
          std::string key = ParseString();
          Expect(':');
          v.object.emplace(std::move(key), ParseValue(depth + 1));
        } while (Consume(','));
        Expect('}');
      }
    } else if (c == '[') {
      ++i_;
      v.kind = Value::Kind::kArray;
      if (!Consume(']')) {
        do {
          v.array.push_back(ParseValue(depth + 1));
        } while (Consume(','));
        Expect(']');
      }
    } else if (c == '"') {
      v.kind = Value::Kind::kString;
      v.str = ParseString();
    } else if (ConsumeWord("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
    } else if (ConsumeWord("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
    } else if (ConsumeWord("null")) {
      v.kind = Value::Kind::kNull;
    } else {
      v.kind = Value::Kind::kNumber;
      // strtod is laxer than JSON: it accepts "inf"/"nan"/"+1" and hex
      // floats, none of which Dump can re-serialize (and non-finite values
      // poison downstream arithmetic), so gate them out here.
      SC_CHECK_MSG(c == '-' || std::isdigit(static_cast<unsigned char>(c)),
                   "bad JSON number at offset " << i_);
      char* end = nullptr;
      v.number = std::strtod(s_.c_str() + i_, &end);
      SC_CHECK_MSG(end != s_.c_str() + i_,
                   "bad JSON number at offset " << i_);
      for (const char* p = s_.c_str() + i_; p != end; ++p)
        SC_CHECK_MSG(*p != 'x' && *p != 'X',
                     "hex is not a JSON number at offset " << i_);
      SC_CHECK_MSG(std::isfinite(v.number),
                   "non-finite JSON number at offset " << i_);
      i_ = static_cast<std::size_t>(end - s_.c_str());
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

inline Value Parse(const std::string& text) { return Parser(text).Parse(); }

namespace detail {

inline void DumpString(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        SC_CHECK_MSG(static_cast<unsigned char>(c) >= 0x20,
                     "unsupported control character in JSON string");
        out += c;
    }
  }
  out += '"';
}

inline void DumpNumber(double d, std::string& out) {
  // JSON has no inf/nan, and Parser rejects them; writing one here would
  // produce a file no round trip can read back.
  SC_CHECK_MSG(std::isfinite(d), "non-finite number cannot be JSON");
  char buf[40];
  // Integral values in the exact-double range print as integers so that
  // counters survive a Dump/Parse round trip byte-identically. The range
  // check must precede any cast: double -> long long is undefined for
  // values outside [-2^63, 2^63).
  const double kExact = 9007199254740992.0;  // 2^53
  if (d > -kExact && d < kExact && d == std::floor(d)) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  out += buf;
}

inline void DumpValue(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Kind::kNumber: DumpNumber(v.number, out); break;
    case Value::Kind::kString: DumpString(v.str, out); break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.array) {
        if (!first) out += ',';
        first = false;
        DumpValue(e, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, e] : v.object) {
        if (!first) out += ',';
        first = false;
        DumpString(key, out);
        out += ':';
        DumpValue(e, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace detail

// Canonical single-line serialization (std::map key order, no spaces).
inline std::string Dump(const Value& v) {
  std::string out;
  detail::DumpValue(v, out);
  return out;
}

}  // namespace sc::support::json

#endif  // SC_SUPPORT_JSON_H_
