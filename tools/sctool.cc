// sctool: inspect and convert sct-v1 binary trace files (DESIGN.md §14).
//
//   sctool info <trace.sct>              print header, metadata and stats
//   sctool from-csv <in.csv> <out.sct>   convert a CSV trace to sct-v1
//   sctool to-csv <in.sct> <out.csv>     convert an sct-v1 trace to CSV
//
// `info` streams the file chunk by chunk (StoreReader::NextChunk), so it
// verifies every CRC and invariant without materializing the trace. All
// decode failures surface as sc::Error with a reason; exit status 1.

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "support/json.h"
#include "trace/trace.h"

namespace {

int Usage() {
  std::cerr << "usage: sctool info <trace.sct>\n"
               "       sctool from-csv <in.csv> <out.sct>\n"
               "       sctool to-csv <in.sct> <out.csv>\n";
  return 2;
}

int Info(const std::string& path) {
  sc::store::StoreReader reader = sc::store::StoreReader::OpenFile(path);
  const sc::store::StoreReader::Header& h = reader.header();
  std::printf("file:          %s\n", path.c_str());
  std::printf("format:        sct-v%u\n", sc::store::kFormatVersion);
  std::printf("events:        %llu\n",
              static_cast<unsigned long long>(h.event_count));
  std::printf("chunks:        %llu\n",
              static_cast<unsigned long long>(h.chunk_count));
  std::printf("last cycle:    %llu\n",
              static_cast<unsigned long long>(h.last_cycle));
  std::printf("bytes read:    %llu\n",
              static_cast<unsigned long long>(h.bytes_read));
  std::printf("bytes written: %llu\n",
              static_cast<unsigned long long>(h.bytes_written));
  std::printf("metadata:      %s\n", sc::support::json::Dump(h.meta).c_str());

  // Stream the chunks: verifies every CRC and decode invariant, and
  // gathers stats no header field carries.
  std::uint64_t reads = 0, writes = 0;
  std::uint64_t min_addr = UINT64_MAX, max_end = 0;
  sc::trace::TraceBuffer::ChunkView v;
  while (reader.NextChunk(&v)) {
    for (std::size_t i = 0; i < v.count; ++i) {
      if (v.ops[i] == 0)
        ++reads;
      else
        ++writes;
      if (v.addrs[i] < min_addr) min_addr = v.addrs[i];
      const std::uint64_t end = v.addrs[i] + v.bytes[i];
      if (end > max_end) max_end = end;
    }
  }
  std::printf("read events:   %llu\n", static_cast<unsigned long long>(reads));
  std::printf("write events:  %llu\n", static_cast<unsigned long long>(writes));
  if (h.event_count > 0)
    std::printf("address span:  [0x%llx, 0x%llx)\n",
                static_cast<unsigned long long>(min_addr),
                static_cast<unsigned long long>(max_end));
  std::printf("integrity:     all chunk CRCs verified\n");
  return 0;
}

int FromCsv(const std::string& in, const std::string& out) {
  const sc::trace::Trace t = sc::trace::Trace::LoadCsvFile(in);
  sc::support::json::Value meta = sc::support::json::Value::Object();
  meta.object["source"] = sc::support::json::Value::String("sctool.from-csv");
  sc::store::WriteTraceFile(out, t, std::move(meta));
  std::printf("%s: %zu events -> %s\n", in.c_str(), t.size(), out.c_str());
  return 0;
}

int ToCsv(const std::string& in, const std::string& out) {
  const sc::trace::Trace t = sc::store::ReadTraceFile(in);
  t.SaveCsvFile(out);
  std::printf("%s: %zu events -> %s\n", in.c_str(), t.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc >= 2 ? argv[1] : "";
    if (cmd == "info" && argc == 3) return Info(argv[2]);
    if (cmd == "from-csv" && argc == 4) return FromCsv(argv[2], argv[3]);
    if (cmd == "to-csv" && argc == 4) return ToCsv(argv[2], argv[3]);
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "sctool: " << e.what() << "\n";
    return 1;
  }
}
